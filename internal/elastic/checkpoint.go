// Package elastic implements elastic checkpointing for ZeRO training: the
// sharded checkpoint format, the pure N→M resharding transform, and the
// asynchronous boundary snapshotter riding the "checkpoint" stream.
//
// ZeRO's state layout makes elasticity mechanical (the paper's partitioning
// argument run backwards): optimizer state, master parameters and the
// gradient accumulator are exact Ψ/N partitions of flat buffers, so a
// checkpoint taken at world size N is restorable at any world size M by
// regrouping the partition ranges — no interpolation, no re-derivation.
// Regrouping at M == N is the identity (bitwise); across N↔M the restored
// state is bitwise too, and only the *subsequent* trajectory differs within
// reduction-tree tolerance (the same caveat as cross-topology runs).
package elastic

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/zero"
)

// Version is the checkpoint format version written by Encode. Decoders
// reject versions they do not know.
const Version = 1

// Shard is one rank's slice of a checkpoint: the training state over the
// parameter range [Lo, Hi).
type Shard struct {
	Lo, Hi int
	Params []float32   // fp32 master parameters
	Opt    [][]float32 // optimizer state tensors, optimizer State() order
	Accum  []float32   // pending gradient accumulator (empty at a boundary)
}

// Len returns the shard's parameter count.
func (sh *Shard) Len() int { return sh.Hi - sh.Lo }

// Checkpoint is a complete sharded training checkpoint: WorldSize shards
// tiling [0, NumParams) under comm.Partition's near-equal split, plus the
// scalar training clock. It is self-describing on disk (versioned header,
// see encode.go) and transformable across world sizes (Reshard).
type Checkpoint struct {
	Stage       zero.Stage
	WorldSize   int
	NumParams   int
	OptSteps    int
	AccumMicros int // > 0 when captured mid-accumulation

	Shards []Shard // Shards[r] is rank r's partition
}

// optTensors returns the optimizer state tensor count (0 for an empty
// checkpoint).
func (ck *Checkpoint) optTensors() int {
	if len(ck.Shards) == 0 {
		return 0
	}
	return len(ck.Shards[0].Opt)
}

// Validate checks the checkpoint's structural invariants: the shard ranges
// are exactly comm.Partition(NumParams, WorldSize), every tensor matches its
// shard's length, and the optimizer tensor count is uniform.
func (ck *Checkpoint) Validate() error {
	if ck.WorldSize <= 0 || len(ck.Shards) != ck.WorldSize {
		return fmt.Errorf("elastic: checkpoint has %d shards for world size %d", len(ck.Shards), ck.WorldSize)
	}
	if ck.NumParams < 0 || ck.OptSteps < 0 || ck.AccumMicros < 0 {
		return fmt.Errorf("elastic: negative clock fields (params %d, steps %d, micros %d)", ck.NumParams, ck.OptSteps, ck.AccumMicros)
	}
	parts := comm.Partition(ck.NumParams, ck.WorldSize)
	k := ck.optTensors()
	for r, sh := range ck.Shards {
		p := parts[r]
		if sh.Lo != p.Lo || sh.Hi != p.Hi {
			return fmt.Errorf("elastic: shard %d covers [%d,%d), want partition range [%d,%d)", r, sh.Lo, sh.Hi, p.Lo, p.Hi)
		}
		if len(sh.Params) != sh.Len() {
			return fmt.Errorf("elastic: shard %d has %d params for range length %d", r, len(sh.Params), sh.Len())
		}
		if len(sh.Opt) != k {
			return fmt.Errorf("elastic: shard %d has %d optimizer tensors, shard 0 has %d", r, len(sh.Opt), k)
		}
		for i, s := range sh.Opt {
			if len(s) != sh.Len() {
				return fmt.Errorf("elastic: shard %d optimizer tensor %d has %d elems, want %d", r, i, len(s), sh.Len())
			}
		}
		wantAccum := 0
		if ck.AccumMicros > 0 {
			wantAccum = sh.Len()
		}
		if len(sh.Accum) != wantAccum {
			return fmt.Errorf("elastic: shard %d has %d accumulator elems, want %d", r, len(sh.Accum), wantAccum)
		}
	}
	return nil
}

// FromShards assembles a checkpoint from one ShardState per rank (any
// order). The captures must come from the same training moment: world size,
// stage, clock and tensor counts must agree, and the ranges must tile the
// parameter space.
func FromShards(shards []zero.ShardState) (*Checkpoint, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("elastic: no shards")
	}
	ordered := make([]*zero.ShardState, len(shards))
	first := &shards[0]
	for i := range shards {
		sh := &shards[i]
		if sh.WorldSize != len(shards) {
			return nil, fmt.Errorf("elastic: shard of rank %d claims world size %d, have %d shards", sh.Rank, sh.WorldSize, len(shards))
		}
		if sh.Rank < 0 || sh.Rank >= len(shards) {
			return nil, fmt.Errorf("elastic: shard rank %d out of range", sh.Rank)
		}
		if ordered[sh.Rank] != nil {
			return nil, fmt.Errorf("elastic: duplicate shard for rank %d", sh.Rank)
		}
		if sh.Stage != first.Stage || sh.NumParams != first.NumParams ||
			sh.OptSteps != first.OptSteps || sh.AccumMicros != first.AccumMicros ||
			len(sh.Opt) != len(first.Opt) {
			return nil, fmt.Errorf("elastic: shard of rank %d disagrees with rank %d on checkpoint metadata", sh.Rank, first.Rank)
		}
		ordered[sh.Rank] = sh
	}
	ck := &Checkpoint{
		Stage:       first.Stage,
		WorldSize:   len(shards),
		NumParams:   first.NumParams,
		OptSteps:    first.OptSteps,
		AccumMicros: first.AccumMicros,
		Shards:      make([]Shard, len(shards)),
	}
	for r, sh := range ordered {
		dst := &ck.Shards[r]
		dst.Lo, dst.Hi = sh.Lo, sh.Hi
		dst.Params = append([]float32(nil), sh.Params...)
		dst.Opt = make([][]float32, len(sh.Opt))
		for i, s := range sh.Opt {
			dst.Opt[i] = append([]float32(nil), s...)
		}
		if sh.AccumMicros > 0 {
			dst.Accum = append([]float32(nil), sh.Accum...)
		}
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	return ck, nil
}

// FromSnapshot shards a consolidated zero.Snapshot into an n-rank
// checkpoint — the bridge from the classic Save path (and the serve
// checkpoint endpoint) into the elastic format.
func FromSnapshot(s *zero.Snapshot, n int) (*Checkpoint, error) {
	if s == nil {
		return nil, fmt.Errorf("elastic: nil snapshot")
	}
	if n <= 0 {
		return nil, fmt.Errorf("elastic: world size %d", n)
	}
	if len(s.Params) != s.NumParams {
		return nil, fmt.Errorf("elastic: snapshot has %d params, header says %d", len(s.Params), s.NumParams)
	}
	ck := &Checkpoint{
		Stage:       s.Stage,
		WorldSize:   n,
		NumParams:   s.NumParams,
		OptSteps:    s.OptSteps,
		AccumMicros: s.AccumMicros,
		Shards:      make([]Shard, n),
	}
	parts := comm.Partition(s.NumParams, n)
	for r, p := range parts {
		dst := &ck.Shards[r]
		dst.Lo, dst.Hi = p.Lo, p.Hi
		dst.Params = append([]float32(nil), s.Params[p.Lo:p.Hi]...)
		dst.Opt = make([][]float32, len(s.Opt))
		for i, full := range s.Opt {
			dst.Opt[i] = append([]float32(nil), full[p.Lo:p.Hi]...)
		}
		if s.AccumMicros > 0 {
			dst.Accum = append([]float32(nil), s.Accum[p.Lo:p.Hi]...)
		}
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	return ck, nil
}

// Snapshot reassembles the checkpoint into a consolidated zero.Snapshot —
// what Trainer.Load consumes. The assembly is a pure concatenation of the
// tiling shards, so capture → assemble → Load at the same world size is
// bitwise.
func (ck *Checkpoint) Snapshot() *zero.Snapshot {
	s := &zero.Snapshot{
		Stage:       ck.Stage,
		WorldSize:   ck.WorldSize,
		NumParams:   ck.NumParams,
		OptSteps:    ck.OptSteps,
		AccumMicros: ck.AccumMicros,
		Params:      make([]float32, ck.NumParams),
		Opt:         make([][]float32, ck.optTensors()),
	}
	for i := range s.Opt {
		s.Opt[i] = make([]float32, ck.NumParams)
	}
	if ck.AccumMicros > 0 {
		s.Accum = make([]float32, ck.NumParams)
	}
	for r := range ck.Shards {
		sh := &ck.Shards[r]
		copy(s.Params[sh.Lo:sh.Hi], sh.Params)
		for i, st := range sh.Opt {
			copy(s.Opt[i][sh.Lo:sh.Hi], st)
		}
		if ck.AccumMicros > 0 {
			copy(s.Accum[sh.Lo:sh.Hi], sh.Accum)
		}
	}
	return s
}
