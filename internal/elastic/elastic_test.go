package elastic

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/optimizer"
	"repro/internal/tensor"
	"repro/internal/zero"
)

func testConfig() model.Config {
	return model.Config{Layers: 2, Hidden: 16, Heads: 2, Vocab: 19, Seq: 8}
}

const (
	testSeed = 7
	testLR   = 1e-3
)

// syntheticCheckpoint builds a valid checkpoint with deterministic,
// position-dependent values so misplaced floats are detectable.
func syntheticCheckpoint(t *testing.T, n, numParams, optK, accumMicros int) *Checkpoint {
	t.Helper()
	ck := &Checkpoint{
		Stage:       zero.StageOSG,
		WorldSize:   n,
		NumParams:   numParams,
		OptSteps:    13,
		AccumMicros: accumMicros,
		Shards:      make([]Shard, n),
	}
	fill := func(lo, hi, tensorID int) []float32 {
		xs := make([]float32, hi-lo)
		for i := range xs {
			xs[i] = float32(tensorID*1000000 + lo + i)
		}
		return xs
	}
	for r, p := range comm.Partition(numParams, n) {
		sh := &ck.Shards[r]
		sh.Lo, sh.Hi = p.Lo, p.Hi
		sh.Params = fill(p.Lo, p.Hi, 1)
		sh.Opt = make([][]float32, optK)
		for i := range sh.Opt {
			sh.Opt[i] = fill(p.Lo, p.Hi, 2+i)
		}
		if accumMicros > 0 {
			sh.Accum = fill(p.Lo, p.Hi, 2+optK)
		}
	}
	if err := ck.Validate(); err != nil {
		t.Fatalf("synthetic checkpoint invalid: %v", err)
	}
	return ck
}

func snapshotsEqual(t *testing.T, a, b *zero.Snapshot, label string) {
	t.Helper()
	if a.NumParams != b.NumParams || a.OptSteps != b.OptSteps ||
		a.AccumMicros != b.AccumMicros || len(a.Opt) != len(b.Opt) {
		t.Fatalf("%s: snapshot headers differ: %+v vs %+v", label, a.OptSteps, b.OptSteps)
	}
	if d := tensor.MaxDiff(a.Params, b.Params); d != 0 {
		t.Errorf("%s: params differ by %g", label, d)
	}
	for i := range a.Opt {
		if d := tensor.MaxDiff(a.Opt[i], b.Opt[i]); d != 0 {
			t.Errorf("%s: opt tensor %d differs by %g", label, i, d)
		}
	}
	if a.AccumMicros > 0 {
		if d := tensor.MaxDiff(a.Accum, b.Accum); d != 0 {
			t.Errorf("%s: accum differs by %g", label, d)
		}
	}
}

// Resharding N→M preserves every float at its flat offset: the reassembled
// consolidated snapshot is bitwise identical for any M, including M > N,
// M = 1, and M larger than the parameter count (empty shards).
func TestReshardPreservesStateBitwise(t *testing.T) {
	for _, accum := range []int{0, 2} {
		src := syntheticCheckpoint(t, 4, 103, 2, accum)
		want := src.Snapshot()
		for _, m := range []int{1, 2, 3, 4, 5, 8, 64, 200} {
			got, err := src.Reshard(m)
			if err != nil {
				t.Fatalf("reshard to %d: %v", m, err)
			}
			if got.WorldSize != m || len(got.Shards) != m {
				t.Fatalf("reshard to %d produced %d shards", m, len(got.Shards))
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("resharded checkpoint invalid at m=%d: %v", m, err)
			}
			s := got.Snapshot()
			s.WorldSize = want.WorldSize // world size is the only field allowed to differ
			snapshotsEqual(t, want, s, "m="+itoa(m))
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// Reshard round trip N→M→N reproduces the original checkpoint exactly, and
// resharding at M == N is a deep copy (mutating it leaves the source alone).
func TestReshardRoundTripAndDeepCopy(t *testing.T) {
	src := syntheticCheckpoint(t, 4, 97, 2, 1)
	mid, err := src.Reshard(3)
	if err != nil {
		t.Fatal(err)
	}
	back, err := mid.Reshard(4)
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, src.Snapshot(), back.Snapshot(), "4→3→4")

	cp, err := src.Reshard(4)
	if err != nil {
		t.Fatal(err)
	}
	cp.Shards[0].Params[0] += 1
	cp.Shards[0].Opt[1][0] += 1
	cp.Shards[0].Accum[0] += 1
	if src.Shards[0].Params[0] == cp.Shards[0].Params[0] ||
		src.Shards[0].Opt[1][0] == cp.Shards[0].Opt[1][0] ||
		src.Shards[0].Accum[0] == cp.Shards[0].Accum[0] {
		t.Error("reshard at same world size aliased the source")
	}
}

func TestReshardRejectsBadInput(t *testing.T) {
	src := syntheticCheckpoint(t, 4, 50, 1, 0)
	if _, err := src.Reshard(0); err == nil {
		t.Error("reshard to 0 ranks accepted")
	}
	broken := syntheticCheckpoint(t, 4, 50, 1, 0)
	broken.Shards[2].Lo++ // ranges no longer tile
	if _, err := broken.Reshard(2); err == nil {
		t.Error("non-tiling shard ranges accepted")
	}
	short := syntheticCheckpoint(t, 4, 50, 1, 0)
	short.Shards[1].Params = short.Shards[1].Params[:1]
	if _, err := short.Reshard(2); err == nil {
		t.Error("short params tensor accepted")
	}
}

// The binary format round-trips, and every corruption class is loud:
// truncation, bit flips, trailing bytes, wrong magic, wrong version.
func TestEncodeDecodeAndCorruption(t *testing.T) {
	src := syntheticCheckpoint(t, 3, 41, 2, 2)
	blob, err := src.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stage != src.Stage || got.OptSteps != src.OptSteps || got.AccumMicros != src.AccumMicros {
		t.Fatalf("header mangled: %+v", got)
	}
	snapshotsEqual(t, src.Snapshot(), got.Snapshot(), "encode/decode")

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 3, len(blob) / 3, len(blob) - 1} {
			if _, err := Decode(blob[:cut]); err == nil {
				t.Errorf("truncation to %d bytes decoded", cut)
			}
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		if _, err := Decode(append(append([]byte(nil), blob...), 0x00)); err == nil {
			t.Error("padded blob decoded")
		}
	})
	t.Run("payload bit flip", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[len(bad)/2] ^= 0x10
		if _, err := Decode(bad); err == nil {
			t.Error("corrupt payload decoded")
		}
	})
	t.Run("wrong magic", func(t *testing.T) {
		// Re-seal so only the magic is wrong, not the checksum.
		payload, err := zero.OpenFrame(blob)
		if err != nil {
			t.Fatal(err)
		}
		bad := append([]byte(nil), payload...)
		bad[0] = 'X'
		if _, err := Decode(zero.SealFrame(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Errorf("wrong magic decoded (err=%v)", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		payload, err := zero.OpenFrame(blob)
		if err != nil {
			t.Fatal(err)
		}
		bad := append([]byte(nil), payload...)
		bad[4] = 0xff
		if _, err := Decode(zero.SealFrame(bad)); err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("future version decoded (err=%v)", err)
		}
	})
}

// captureWorld trains a schedule and returns the per-rank shard captures
// plus each rank's final full parameter view. The schedule is fullSteps
// whole optimizer steps followed by extraMicros forward/backward
// micro-batches left pending in the accumulator.
func captureWorld(t *testing.T, n int, opts zero.Options, fullSteps, microsPer, extraMicros int,
	ids, targets []int, batch int) []zero.ShardState {
	t.Helper()
	shards := make([]zero.ShardState, n)
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		tr := zero.MustNew(c, testConfig(), opts)
		defer tr.Close()
		for s := 0; s < fullSteps; s++ {
			for m := 0; m < microsPer; m++ {
				tr.Forward(ids, targets, batch)
				tr.Backward()
			}
			tr.Update()
		}
		for m := 0; m < extraMicros; m++ {
			tr.Forward(ids, targets, batch)
			tr.Backward()
		}
		tr.CaptureShard(&shards[c.Rank()])
	})
	return shards
}

// resumeWorld loads a consolidated snapshot into a fresh n-rank world (a
// different seed, so the weights genuinely come from the snapshot), runs
// the given schedule, and returns each rank's final full parameter buffer.
func resumeWorld(t *testing.T, n int, opts zero.Options, snap *zero.Snapshot,
	finishMicros int, fullSteps, microsPer int, ids, targets []int, batch int) [][]float32 {
	t.Helper()
	out := make([][]float32, n)
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		o := opts
		o.Seed = 4242
		tr := zero.MustNew(c, testConfig(), o)
		defer tr.Close()
		if err := tr.Load(snap); err != nil {
			t.Error(err)
			return
		}
		for m := 0; m < finishMicros; m++ {
			tr.Forward(ids, targets, batch)
			tr.Backward()
		}
		if finishMicros > 0 {
			tr.Update()
		}
		for s := 0; s < fullSteps; s++ {
			for m := 0; m < microsPer; m++ {
				tr.Forward(ids, targets, batch)
				tr.Backward()
			}
			tr.Update()
		}
		out[c.Rank()] = tr.GatheredParams()
	})
	return out
}

// referenceWorld runs the uninterrupted schedule and returns final params.
func referenceWorld(t *testing.T, n int, opts zero.Options, fullSteps, microsPer int,
	ids, targets []int, batch int) [][]float32 {
	t.Helper()
	out := make([][]float32, n)
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		tr := zero.MustNew(c, testConfig(), opts)
		defer tr.Close()
		for s := 0; s < fullSteps; s++ {
			for m := 0; m < microsPer; m++ {
				tr.Forward(ids, targets, batch)
				tr.Backward()
			}
			tr.Update()
		}
		out[c.Rank()] = tr.GatheredParams()
	})
	return out
}

// The snapshot round-trip matrix (capture → FromShards → Snapshot → Load →
// resume) is bitwise across stage × optimizer × accumulation depth,
// including captures taken mid-accumulation. This is the elastic capture
// path's core correctness claim: CaptureShard + reassembly is
// indistinguishable from never having stopped.
func TestCaptureRoundTripMatrix(t *testing.T) {
	cfg := testConfig()
	const n, batch = 4, 4
	ids, targets := model.SyntheticBatch(11, batch, cfg.Seq, cfg.Vocab)

	cases := []struct {
		name   string
		stage  zero.Stage
		opt    optimizer.Spec
		micros int // accumulation depth per optimizer step
		midCut int // micro-batches already folded when the capture happens
		fp16   bool
	}{
		{name: "ddp/adam/k1", stage: zero.StageDDP, micros: 1},
		{name: "os/adam/k2", stage: zero.StageOS, micros: 2},
		{name: "osg/adam/k1", stage: zero.StageOSG, micros: 1},
		{name: "osg/adam/k3-mid2", stage: zero.StageOSG, micros: 3, midCut: 2},
		{name: "osg/sgd/k2-mid1", stage: zero.StageOSG, opt: optimizer.Spec{Kind: optimizer.KindSGD}, micros: 2, midCut: 1},
		{name: "osg/lamb/k2", stage: zero.StageOSG, opt: optimizer.Spec{Kind: optimizer.KindLAMB}, micros: 2},
		{name: "osgp/adam/k2-mid1", stage: zero.StageOSGP, micros: 2, midCut: 1},
		{name: "osgp/sgd/k1", stage: zero.StageOSGP, opt: optimizer.Spec{Kind: optimizer.KindSGD}, micros: 1},
		{name: "osg/adam/fp16-k2-mid1", stage: zero.StageOSG, micros: 2, midCut: 1, fp16: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := zero.Options{Stage: tc.stage, LR: testLR, Seed: testSeed,
				Optimizer: tc.opt, FP16: tc.fp16}
			const preSteps, postSteps = 2, 2

			// Uninterrupted reference: preSteps + 1 (the step the capture
			// interrupts, when mid-accumulation) + postSteps updates.
			interrupted := 0
			if tc.midCut > 0 {
				interrupted = 1
			}
			ref := referenceWorld(t, n, opts, preSteps+interrupted+postSteps, tc.micros,
				ids, targets, batch)

			shards := captureWorld(t, n, opts, preSteps, tc.micros, tc.midCut,
				ids, targets, batch)
			ck, err := FromShards(shards)
			if err != nil {
				t.Fatal(err)
			}
			if (ck.AccumMicros > 0) != (tc.midCut > 0) {
				t.Fatalf("capture AccumMicros=%d, midCut=%d", ck.AccumMicros, tc.midCut)
			}
			finish := 0
			if tc.midCut > 0 {
				finish = tc.micros - tc.midCut
			}
			got := resumeWorld(t, n, opts, ck.Snapshot(), finish, postSteps, tc.micros,
				ids, targets, batch)
			for r := 0; r < n; r++ {
				if d := tensor.MaxDiff(got[r], ref[r]); d != 0 {
					t.Errorf("rank %d: resumed trajectory diverged by %g", r, d)
				}
			}
		})
	}
}

// Elastic resume across world sizes through the reshard path: capture at
// N=4, reshard to M=2, resume at M=2 — the trajectory matches a from-scratch
// M=2 run of the full schedule within reduction-tree tolerance.
func TestReshardedResumeMatchesSmallWorld(t *testing.T) {
	cfg := testConfig()
	const batch, pre, post = 4, 3, 3
	ids, targets := model.SyntheticBatch(5, batch, cfg.Seq, cfg.Vocab)
	opts := zero.Options{Stage: zero.StageOSG, LR: testLR, Seed: testSeed}

	shards := captureWorld(t, 4, opts, pre, 1, 0, ids, targets, batch)
	ck, err := FromShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	down, err := ck.Reshard(2)
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceWorld(t, 2, opts, pre+post, 1, ids, targets, batch)
	got := resumeWorld(t, 2, opts, down.Snapshot(), 0, post, 1, ids, targets, batch)
	for r := 0; r < 2; r++ {
		if d := tensor.MaxDiff(got[r], ref[r]); d > 1e-3 {
			t.Errorf("rank %d: resharded resume diverged by %g", r, d)
		}
	}
}

// The async snapshotter's checkpoint equals a synchronous capture of the
// same moment, snapshots overlap training without corruption, files land
// atomically, and retention prunes to the bound.
func TestSnapshotterAsyncMatchesSyncCapture(t *testing.T) {
	cfg := testConfig()
	const n, batch, steps, every = 4, 4, 6, 2
	ids, targets := model.SyntheticBatch(3, batch, cfg.Seq, cfg.Vocab)
	opts := zero.Options{Stage: zero.StageOSG, LR: testLR, Seed: testSeed}
	dir := t.TempDir()

	snap, err := NewSnapshotter(Policy{Every: every, Dir: dir, Keep: 2}, n)
	if err != nil {
		t.Fatal(err)
	}
	finals := make([]zero.ShardState, n)
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		tr := zero.MustNew(c, testConfig(), opts)
		defer tr.Close()
		for s := 1; s <= steps; s++ {
			tr.Step(ids, targets, batch)
			snap.Tick(s, tr)
		}
		// Synchronous ground truth for the same moment as the last Tick.
		tr.CaptureShard(&finals[c.Rank()])
		snap.Flush(c.Rank())
	})
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if got := snap.Count(); got != steps/every {
		t.Errorf("completed %d snapshots, want %d", got, steps/every)
	}

	latest := snap.Latest()
	if latest == nil {
		t.Fatal("no snapshot published")
	}
	sync, err := FromShards(finals)
	if err != nil {
		t.Fatal(err)
	}
	if latest.OptSteps != sync.OptSteps {
		t.Fatalf("latest snapshot at step %d, sync capture at %d", latest.OptSteps, sync.OptSteps)
	}
	snapshotsEqual(t, sync.Snapshot(), latest.Snapshot(), "async vs sync")

	// Retention kept exactly Keep files; the newest is the last Tick; no
	// temp files leaked; the file decodes back to the published checkpoint.
	files, err := ListCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("retention kept %d files, want 2: %v", len(files), files)
	}
	newest, err := LatestFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(newest) != checkpointName(steps) {
		t.Errorf("newest file %s, want %s", newest, checkpointName(steps))
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leaked temp file %s", e.Name())
		}
	}
	fromDisk, err := LoadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, latest.Snapshot(), fromDisk.Snapshot(), "disk vs memory")
}

// A snapshotter with no Dir keeps checkpoints in memory only; Snap works
// mid-accumulation and the restored accumulator round-trips.
func TestSnapshotterMidAccumInMemory(t *testing.T) {
	cfg := testConfig()
	const n, batch = 2, 4
	ids, targets := model.SyntheticBatch(9, batch, cfg.Seq, cfg.Vocab)
	opts := zero.Options{Stage: zero.StageOS, LR: testLR, Seed: testSeed}

	snap, err := NewSnapshotter(Policy{}, n)
	if err != nil {
		t.Fatal(err)
	}
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		tr := zero.MustNew(c, testConfig(), opts)
		defer tr.Close()
		tr.Step(ids, targets, batch)
		tr.Forward(ids, targets, batch)
		tr.Backward()
		snap.Snap(1, tr)
		snap.Flush(c.Rank())
	})
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	ck := snap.Latest()
	if ck == nil {
		t.Fatal("no snapshot published")
	}
	if ck.AccumMicros != 1 {
		t.Fatalf("AccumMicros = %d, want 1 (capture was mid-accumulation)", ck.AccumMicros)
	}
	if ck.OptSteps != 1 {
		t.Errorf("OptSteps = %d, want 1", ck.OptSteps)
	}
}

// FromSnapshot shards a consolidated snapshot and Snapshot() reassembles it
// bitwise — the bridge between the classic gob format and the elastic one.
func TestFromSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const p = 37
	s := &zero.Snapshot{
		Stage: zero.StageOSG, WorldSize: 4, NumParams: p, OptSteps: 9,
		AccumMicros: 3,
		Params:      make([]float32, p),
		Opt:         [][]float32{make([]float32, p), make([]float32, p)},
		Accum:       make([]float32, p),
	}
	for i := 0; i < p; i++ {
		s.Params[i] = rng.Float32()
		s.Opt[0][i] = rng.Float32()
		s.Opt[1][i] = rng.Float32()
		s.Accum[i] = rng.Float32()
	}
	for _, n := range []int{1, 3, 4, 7} {
		ck, err := FromSnapshot(s, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		back := ck.Snapshot()
		back.WorldSize = s.WorldSize
		snapshotsEqual(t, s, back, "n="+itoa(n))
	}
}
