// Package repro's top-level benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation (regenerating the experiment
// end to end), plus microbenchmarks of the training engines themselves and
// ablations of the design choices called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/ddp"
	"repro/internal/elastic"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/mp"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/zero"
)

// --- One benchmark per paper table/figure -------------------------------

func benchTable(b *testing.B, driver func() experiments.Table) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := driver()
		t.Render(io.Discard)
	}
}

func BenchmarkFig1(b *testing.B)       { benchTable(b, experiments.Fig1) }
func BenchmarkTable1(b *testing.B)     { benchTable(b, experiments.Table1) }
func BenchmarkTable2(b *testing.B)     { benchTable(b, experiments.Table2) }
func BenchmarkFig2(b *testing.B)       { benchTable(b, experiments.Fig2) }
func BenchmarkFig3(b *testing.B)       { benchTable(b, experiments.Fig3) }
func BenchmarkFig4(b *testing.B)       { benchTable(b, experiments.Fig4) }
func BenchmarkFig5(b *testing.B)       { benchTable(b, experiments.Fig5) }
func BenchmarkFig6(b *testing.B)       { benchTable(b, experiments.Fig6) }
func BenchmarkFig7(b *testing.B)       { benchTable(b, experiments.Fig7) }
func BenchmarkFig8(b *testing.B)       { benchTable(b, experiments.Fig8) }
func BenchmarkCommVolume(b *testing.B) { benchTable(b, experiments.CommVolume) }

// --- Training-engine microbenchmarks -------------------------------------

func benchConfig() model.Config {
	return model.Config{Layers: 2, Hidden: 64, Heads: 4, Vocab: 64, Seq: 32}
}

// BenchmarkSingleProcessStep is the no-communication reference.
func BenchmarkSingleProcessStep(b *testing.B) {
	cfg := benchConfig()
	m := model.New(cfg, 1)
	ids, targets := model.SyntheticBatch(1, 4, cfg.Seq, cfg.Vocab)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		m.Loss(ids, targets, 4)
		m.Backward()
	}
}

func benchWorld(b *testing.B, run func(c *comm.Comm, ids, targets []int)) {
	b.Helper()
	b.ReportAllocs()
	cfg := benchConfig()
	ids, targets := model.SyntheticBatch(1, 4, cfg.Seq, cfg.Vocab)
	w := comm.NewWorld(4)
	b.ResetTimer()
	w.Run(func(c *comm.Comm) {
		run(c, ids, targets)
	})
}

func BenchmarkDDPStep(b *testing.B) {
	benchWorld(b, func(c *comm.Comm, ids, targets []int) {
		tr := ddp.New(c, benchConfig(), 1, 1e-3)
		for i := 0; i < b.N; i++ {
			tr.Step(ids, targets, 4)
		}
	})
}

func benchZeROStage(b *testing.B, stage zero.Stage) {
	benchWorld(b, func(c *comm.Comm, ids, targets []int) {
		tr := zero.MustNew(c, benchConfig(), zero.Options{Stage: stage, LR: 1e-3, Seed: 1})
		for i := 0; i < b.N; i++ {
			tr.Step(ids, targets, 4)
		}
	})
}

func BenchmarkZeROStage1Step(b *testing.B) { benchZeROStage(b, zero.StageOS) }
func BenchmarkZeROStage2Step(b *testing.B) { benchZeROStage(b, zero.StageOSG) }
func BenchmarkZeROStage3Step(b *testing.B) { benchZeROStage(b, zero.StageOSGP) }

// --- Ablations ------------------------------------------------------------

// Bucketed vs unfused reduce-scatter (the CB design choice): same math,
// different message framing.
func BenchmarkZeROStage2Bucketed(b *testing.B) {
	benchWorld(b, func(c *comm.Comm, ids, targets []int) {
		tr := zero.MustNew(c, benchConfig(), zero.Options{
			Stage: zero.StageOSG, LR: 1e-3, Seed: 1, BucketElems: 4096,
		})
		for i := 0; i < b.N; i++ {
			tr.Step(ids, targets, 4)
		}
	})
}

// Activation checkpointing trades ~33% recompute for activation memory.
func BenchmarkZeROStage2Checkpointed(b *testing.B) {
	benchWorld(b, func(c *comm.Comm, ids, targets []int) {
		tr := zero.MustNew(c, benchConfig(), zero.Options{
			Stage: zero.StageOSG, LR: 1e-3, Seed: 1, Checkpoint: true,
		})
		for i := 0; i < b.N; i++ {
			tr.Step(ids, targets, 4)
		}
	})
}

// FP16 simulation cost (rounding passes + master-shard bookkeeping).
func BenchmarkZeROStage2FP16(b *testing.B) {
	benchWorld(b, func(c *comm.Comm, ids, targets []int) {
		tr := zero.MustNew(c, benchConfig(), zero.Options{
			Stage: zero.StageOSG, LR: 1e-3, Seed: 1, FP16: true,
		})
		for i := 0; i < b.N; i++ {
			tr.Step(ids, targets, 4)
		}
	})
}

// Collective primitives at gradient-buffer scale.
func BenchmarkAllReduce1M(b *testing.B) {
	const n, elems = 4, 1 << 20
	w := comm.NewWorld(n)
	b.SetBytes(elems * 4)
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(c *comm.Comm) {
		x := make([]float32, elems)
		for i := 0; i < b.N; i++ {
			c.AllReduce(x)
		}
	})
}

func BenchmarkReduceScatter1M(b *testing.B) {
	const n, elems = 4, 1 << 20
	w := comm.NewWorld(n)
	b.SetBytes(elems * 4)
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(c *comm.Comm) {
		x := make([]float32, elems)
		parts := comm.Partition(elems, c.Size())
		for i := 0; i < b.N; i++ {
			c.ReduceScatter(x, parts)
		}
	})
}

// --- Extension benchmarks -------------------------------------------------

func BenchmarkAblations(b *testing.B) { benchTable(b, experiments.Ablations) }

func BenchmarkHierarchicalAllReduce1M(b *testing.B) {
	const n, elems, nodeSize = 8, 1 << 20, 4
	w := comm.NewWorld(n)
	b.SetBytes(elems * 4)
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(c *comm.Comm) {
		x := make([]float32, elems)
		for i := 0; i < b.N; i++ {
			if err := c.AllReduceHierarchical(comm.F32Buf(x), nodeSize); err != nil {
				b.Error(err)
			}
		}
	})
}

func BenchmarkParallelBlock(b *testing.B) {
	const n, hidden, heads, batch, seq = 4, 64, 4, 2, 16
	x := make([]float32, batch*seq*hidden)
	dy := make([]float32, batch*seq*hidden)
	w := comm.NewWorld(n)
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(c *comm.Comm) {
		blk := mp.NewParallelBlock(c, hidden, heads, 1)
		for i := 0; i < b.N; i++ {
			blk.Forward(x, batch, seq)
			blk.Backward(dy)
		}
	})
}

func BenchmarkZeROStage2Clipped(b *testing.B) {
	benchWorld(b, func(c *comm.Comm, ids, targets []int) {
		tr := zero.MustNew(c, benchConfig(), zero.Options{
			Stage: zero.StageOSG, LR: 1e-3, Seed: 1, ClipNorm: 1,
		})
		for i := 0; i < b.N; i++ {
			tr.Step(ids, targets, 4)
		}
	})
}

func BenchmarkSnapshotSaveLoad(b *testing.B) {
	cfg := benchConfig()
	ids, targets := model.SyntheticBatch(1, 4, cfg.Seq, cfg.Vocab)
	w := comm.NewWorld(4)
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(c *comm.Comm) {
		tr := zero.MustNew(c, cfg, zero.Options{Stage: zero.StageOSG, LR: 1e-3, Seed: 1})
		tr.Step(ids, targets, 4)
		for i := 0; i < b.N; i++ {
			snap := tr.Save()
			if c.Rank() == 0 {
				snap = zero.BroadcastSnapshot(c, snap)
			} else {
				snap = zero.BroadcastSnapshot(c, nil)
			}
			if err := tr.Load(snap); err != nil {
				b.Error(err)
			}
		}
	})
}

// --- Stage API / stream benchmarks ----------------------------------------

// BenchmarkStreamReduceScatter1M: a stream at gradient scale, submit + wait
// per iteration. Compare with the synchronous BenchmarkReduceScatter1M
// above: the delta is queue overhead alone, the win is the compute that can
// now ride under the wire time.
func BenchmarkStreamReduceScatter1M(b *testing.B) {
	const n, elems = 4, 1 << 20
	w := comm.NewWorld(n)
	b.SetBytes(elems * 4)
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(c *comm.Comm) {
		s := comm.NewScheduler(c)
		defer s.Close()
		st := s.Stream("grad")
		x := make([]float32, elems)
		parts := comm.Partition(elems, c.Size())
		for i := 0; i < b.N; i++ {
			st.ReduceScatter(comm.F32Buf(x), parts).Wait()
		}
	})
}

// benchStageConfig is larger than benchConfig so backward compute is deep
// enough for the overlap window to matter.
func benchStageConfig() model.Config {
	return model.Config{Layers: 4, Hidden: 128, Heads: 4, Vocab: 128, Seq: 32}
}

// BenchmarkKernels measures the three dense-kernel orientations of one
// linear layer at the bench-shape FC1 dimensions (per-rank rows × hidden ×
// 4·hidden): forward X·W, grad-input dY·Wᵀ, grad-weight Xᵀ·dY. This is the
// BENCH_KERNELS.json baseline, gating raw kernel throughput the same way
// BENCH_STAGE_API.json gates whole steps.
func BenchmarkKernels(b *testing.B) {
	const m, k, n = 64, 128, 512
	x := make([]float32, m*k)
	w := make([]float32, k*n)
	y := make([]float32, m*n)
	dx := make([]float32, m*k)
	dw := make([]float32, k*n)
	for i := range x {
		x[i] = float32(i%13) * 0.1
	}
	for i := range w {
		w[i] = float32(i%7) * 0.01
	}
	for i := range y {
		y[i] = float32(i%11) * 0.02
	}
	for _, bench := range []struct {
		name string
		fn   func()
	}{
		{"matmul", func() { tensor.MatMul(y, x, w, m, k, n) }},
		{"matmul-bt", func() { tensor.MatMulBT(dx, y, w, m, n, k) }},
		{"matmul-at-add", func() { tensor.MatMulATAdd(dw, x, y, m, k, n) }},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bench.fn()
			}
			b.SetBytes(int64(m*k+k*n+m*n) * 4) // operand bytes touched per op
		})
	}
}

// BenchmarkStageStep sweeps the unified Stage API: ns/step for every stage
// with the synchronous and the overlapped bucket schedule, reporting the
// measured wire traffic per rank per step (the BENCH_*.json baseline).
func BenchmarkStageStep(b *testing.B) {
	const ranks, batch = 4, 8
	cfg := benchStageConfig()
	ids, targets := model.SyntheticBatch(1, batch, cfg.Seq, cfg.Vocab)
	for _, stage := range zero.AllStages {
		for _, overlap := range []bool{false, true} {
			name := fmt.Sprintf("stage=%d/overlap=%v", int(stage), overlap)
			b.Run(name, func(b *testing.B) {
				w := comm.NewWorld(ranks)
				b.ReportAllocs()
				b.ResetTimer()
				w.Run(func(c *comm.Comm) {
					tr := zero.MustNew(c, cfg, zero.Options{
						Stage: stage, LR: 1e-3, Seed: 1,
						BucketElems: 4096, Overlap: overlap, FP16: true,
					})
					defer tr.Close()
					for i := 0; i < b.N; i++ {
						tr.Step(ids, targets, batch)
					}
				})
				b.StopTimer()
				// Bytes are measured natively by the dtype-tagged buffers
				// (fp16 wire under the FP16 option), not inferred.
				bytesPerStep := float64(w.Stats(0).BytesSent) / float64(b.N)
				b.ReportMetric(bytesPerStep, "wire-B/rank/step")
			})
		}
	}
}

// BenchmarkFP16Step pits the true fp16 compute path against the f32 path
// on otherwise identical stage-2/overlap and stage-3/overlap+prefetch
// steps (the BENCH_FP16.json baseline). Beyond ns/op — the acceptance gate
// holds fp16 within 15% of f32 — each row reports the measured compute
// residency (step workspace + the parameter copy the kernels read), which
// the fp16 rows must keep under 60% of their f32 counterparts, and the
// allocs/op hard gate covers the half-kernel scratch pooling.
func BenchmarkFP16Step(b *testing.B) {
	const ranks, batch = 4, 8
	cfg := benchStageConfig()
	ids, targets := model.SyntheticBatch(1, batch, cfg.Seq, cfg.Vocab)
	for _, mode := range []struct {
		name              string
		stage             zero.Stage
		overlap, prefetch bool
	}{
		{"stage=2", zero.StageOSGrad, true, false},
		{"stage=3", zero.StageFull, true, true},
	} {
		for _, fp16 := range []bool{false, true} {
			prec := "fp32"
			if fp16 {
				prec = "fp16"
			}
			b.Run(mode.name+"/prec="+prec, func(b *testing.B) {
				w := comm.NewWorld(ranks)
				var resident int64
				b.ReportAllocs()
				b.ResetTimer()
				w.Run(func(c *comm.Comm) {
					tr := zero.MustNew(c, cfg, zero.Options{
						Stage: mode.stage, LR: 1e-3, Seed: 1,
						BucketElems: 4096, FP16: true,
						Overlap: mode.overlap, Prefetch: mode.prefetch,
						FP16Compute: fp16,
					})
					defer tr.Close()
					for i := 0; i < b.N; i++ {
						tr.Step(ids, targets, batch)
					}
					if c.Rank() == 0 {
						resident = tr.ComputeResidencyBytes()
					}
				})
				b.StopTimer()
				b.ReportMetric(float64(resident), "resident-B/rank")
				bytesPerStep := float64(w.Stats(0).BytesSent) / float64(b.N)
				b.ReportMetric(bytesPerStep, "wire-B/rank/step")
			})
		}
	}
}

// BenchmarkPrefetchStep: stage 3 with the synchronous parameter gathers,
// the pipelined prefetch schedule, and prefetch + gradient overlap (all
// three streams armed). The BENCH_PREFETCH.json baseline.
func BenchmarkPrefetchStep(b *testing.B) {
	const ranks, batch = 4, 8
	cfg := benchStageConfig()
	ids, targets := model.SyntheticBatch(1, batch, cfg.Seq, cfg.Vocab)
	for _, mode := range []struct {
		name              string
		overlap, prefetch bool
	}{
		{"sync", false, false},
		{"prefetch", false, true},
		{"prefetch+overlap", true, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			w := comm.NewWorld(ranks)
			b.ReportAllocs()
			b.ResetTimer()
			w.Run(func(c *comm.Comm) {
				tr := zero.MustNew(c, cfg, zero.Options{
					Stage: zero.StageFull, LR: 1e-3, Seed: 1,
					BucketElems: 4096, FP16: true,
					Overlap: mode.overlap, Prefetch: mode.prefetch,
				})
				defer tr.Close()
				for i := 0; i < b.N; i++ {
					tr.Step(ids, targets, batch)
				}
			})
			b.StopTimer()
			bytesPerStep := float64(w.Stats(0).BytesSent) / float64(b.N)
			b.ReportMetric(bytesPerStep, "wire-B/rank/step")
		})
	}
}

// BenchmarkHierarchicalStep sweeps the topology knob on an 8-rank stage-2
// world: flat routing versus hierarchical routing at node widths 2 and 4
// (the BENCH_HIER.json baseline). Total volume is identical across rows —
// the hierarchy only re-splits it between the intra- and inter-node legs —
// so on this in-process simulator the interesting metric is the measured
// inter-node share, reported per rank per step.
func BenchmarkHierarchicalStep(b *testing.B) {
	const ranks, batch = 8, 8
	cfg := benchStageConfig()
	ids, targets := model.SyntheticBatch(1, batch, cfg.Seq, cfg.Vocab)
	for _, nodeSize := range []int{0, 2, 4} {
		name := "flat"
		if nodeSize > 0 {
			name = fmt.Sprintf("node=%d", nodeSize)
		}
		b.Run(name, func(b *testing.B) {
			w := comm.NewWorld(ranks)
			b.ReportAllocs()
			b.ResetTimer()
			w.Run(func(c *comm.Comm) {
				tr := zero.MustNew(c, cfg, zero.Options{
					Stage: zero.StageOSGrad, LR: 1e-3, Seed: 1,
					BucketElems: 4096, Overlap: true, FP16: true,
					Topology: zero.Topology{NodeSize: nodeSize},
				})
				defer tr.Close()
				for i := 0; i < b.N; i++ {
					tr.Step(ids, targets, batch)
				}
			})
			b.StopTimer()
			st := w.Stats(0)
			b.ReportMetric(float64(st.BytesSent)/float64(b.N), "wire-B/rank/step")
			b.ReportMetric(float64(st.PerGroup["hier-inter"].Bytes)/float64(b.N), "inter-B/rank/step")
		})
	}
}

// BenchmarkAccumStep sweeps GradAccumSteps through the Engine API at a
// fixed global batch: ns per optimizer step for k ∈ {1,2,4} micro-batches
// (stage 2, fp16, overlapped buckets), reporting measured wire bytes per
// boundary. Larger k trades step latency for the (k+1)/2k wire discount
// and a fixed Ψ/N accumulator — the BENCH_ACCUM.json baseline.
func BenchmarkAccumStep(b *testing.B) {
	const globalBatch = 16
	base := engine.DefaultConfig()
	base.Model = benchStageConfig()
	base.Ranks = 4
	base.Stage = "2"
	base.Optimizer.LR = 1e-3
	base.Seed = 1
	base.FP16 = true
	base.BucketElems = 4096
	base.Overlap = true
	base.GlobalBatch = globalBatch
	ids, targets := model.SyntheticBatch(1, globalBatch, base.Model.Seq, base.Model.Vocab)
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("accum=%d", k), func(b *testing.B) {
			cfg := base
			cfg.GradAccumSteps = k
			cfg.MicroBatch = 0 // derive globalBatch/k
			b.ReportAllocs()
			b.ResetTimer()
			w, err := engine.Run(cfg, func(e *engine.Engine) {
				for i := 0; i < b.N; i++ {
					e.TrainBatch(ids, targets)
				}
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(w.Stats(0).BytesSent)/float64(b.N), "wire-B/rank/step")
		})
	}
}

// BenchmarkMegatronGPTStep measures one training step of the full
// Megatron-parallel GPT at MP=4 (the executable baseline of Figure 2).
func BenchmarkMegatronGPTStep(b *testing.B) {
	const layers, hidden, heads, vocab, seq, batch = 2, 64, 4, 64, 16, 2
	ids, targets := model.SyntheticBatch(1, batch, seq, vocab)
	w := comm.NewWorld(4)
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(c *comm.Comm) {
		m := mp.NewGPT(c, layers, hidden, heads, vocab, seq, 1)
		for i := 0; i < b.N; i++ {
			m.ZeroGrads()
			m.Loss(ids, targets, batch)
			m.Backward()
			m.SGDStep(0.01)
		}
	})
}

// BenchmarkDataPipeline measures the streaming corpus path end to end —
// chunked file reads, document framing, tokenization, the seeded shuffle
// buffer, and sequence packing into micro-batches — in tokens/sec through
// the loader. Steady state must be allocation-free: documents recycle
// through the loader's int arena and the batch buffers are reused, so the
// BENCH_DATA.json baseline pins allocs/op near zero (hard gate, like the
// other suites).
func BenchmarkDataPipeline(b *testing.B) {
	base := data.Config{
		Path:          "examples/corpus/corpus.txt",
		SeqLen:        32,
		ShuffleBuffer: 8,
		Seed:          7,
	}
	const rows, world = 8, 2
	for _, tok := range []string{"byte", "bpe"} {
		b.Run("tok="+tok, func(b *testing.B) {
			cfg := base
			cfg.Tokenizer = tok
			if tok == "bpe" {
				cfg.VocabSize = 512
			}
			ld, err := data.Open(cfg, rows, world)
			if err != nil {
				b.Fatal(err)
			}
			defer ld.Close()
			// Reach steady state before measuring: the first batches
			// grow the batch buffers, prime the shuffle windows, and
			// populate the arena's size classes.
			for i := 0; i < 50; i++ {
				ld.NextBatch()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ld.NextBatch()
			}
			b.StopTimer()
			tokens := float64(b.N) * float64(rows) * float64(cfg.SeqLen)
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(tokens/secs, "tokens/s")
			}
		})
	}
}

// benchElasticCheckpoint builds a synthetic n-way checkpoint with optK
// optimizer tensors per shard, position-dependent values.
func benchElasticCheckpoint(n, numParams, optK int) *elastic.Checkpoint {
	ck := &elastic.Checkpoint{
		Stage:     zero.StageOSG,
		WorldSize: n,
		NumParams: numParams,
		OptSteps:  3,
		Shards:    make([]elastic.Shard, n),
	}
	for r, p := range comm.Partition(numParams, n) {
		sh := &ck.Shards[r]
		sh.Lo, sh.Hi = p.Lo, p.Hi
		sh.Params = make([]float32, p.Len())
		sh.Opt = make([][]float32, optK)
		for i := p.Lo; i < p.Hi; i++ {
			sh.Params[i-p.Lo] = float32(i) * 0.5
		}
		for k := range sh.Opt {
			sh.Opt[k] = make([]float32, p.Len())
			for i := p.Lo; i < p.Hi; i++ {
				sh.Opt[k][i-p.Lo] = float32(k*numParams + i)
			}
		}
	}
	return ck
}

// BenchmarkElastic measures the elastic-checkpointing path against the
// BENCH_ELASTIC.json baseline: the asynchronous boundary snapshot as the
// training loop sees it (capture + flatten + submit; the gather rides the
// checkpoint stream), with the double buffer's exposed stall reported
// separately in stall-ns/op — the number that must stay near zero for
// "snapshots don't stall training" to hold — plus the offline reshard and
// the encode/decode round trip at the same state size.
func BenchmarkElastic(b *testing.B) {
	b.Run("snap", func(b *testing.B) {
		const ranks, batch = 4, 8
		cfg := benchStageConfig()
		ids, targets := model.SyntheticBatch(1, batch, cfg.Seq, cfg.Vocab)
		snapper, err := elastic.NewSnapshotter(elastic.Policy{Every: 1}, ranks)
		if err != nil {
			b.Fatal(err)
		}
		w := comm.NewWorld(ranks)
		// No ReportAllocs: the gather path rides sync.Pool-backed wire
		// buffers whose counts move with GC timing; the deterministic
		// alloc gates live on reshard and encode/decode below.
		b.ResetTimer()
		w.Run(func(c *comm.Comm) {
			tr := zero.MustNew(c, cfg, zero.Options{Stage: zero.StageOSG, LR: 1e-3, Seed: 1})
			defer tr.Close()
			for i := 0; i < b.N; i++ {
				tr.Step(ids, targets, batch)
				snapper.Snap(i+1, tr)
			}
			snapper.Flush(c.Rank())
		})
		b.StopTimer()
		if err := snapper.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(snapper.StallNs())/float64(b.N), "stall-ns/op")
	})
	b.Run("reshard", func(b *testing.B) {
		ck := benchElasticCheckpoint(8, 1<<16, 2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ck.Reshard(4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-decode", func(b *testing.B) {
		ck := benchElasticCheckpoint(8, 1<<16, 2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blob, err := ck.Encode()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := elastic.Decode(blob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServe measures the control plane against the BENCH_SERVE.json
// baseline: full submit-to-complete latency of a small job through the
// scheduler (jobs/s — world construction, one optimizer step, checkpoint
// consolidation and teardown), and the metric-ring hot path an HTTP
// follower rides (append + cursor read; allocs/op is the hard gate — the
// streaming path must not allocate per record).
func BenchmarkServe(b *testing.B) {
	b.Run("job", func(b *testing.B) {
		sched, err := serve.NewScheduler(serve.Config{MaxWorlds: 2, QueueDepth: 64})
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			sched.Drain(ctx) //nolint:errcheck // bench teardown
		}()
		cfg := engine.DefaultConfig()
		cfg.Model = model.Config{Layers: 1, Hidden: 16, Heads: 2, Vocab: 19, Seq: 8}
		cfg.Ranks = 2
		cfg.GlobalBatch, cfg.MicroBatch, cfg.GradAccumSteps = 8, 4, 2
		// No ReportAllocs here: job setup rides sync.Pool-backed wire
		// buffers whose counts move with GC timing; the deterministic
		// alloc gate lives on the metrics path below.
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg.Seed = int64(i + 1)
			j, err := sched.Submit(serve.Spec{Steps: 1, Config: cfg})
			if err != nil {
				b.Fatal(err)
			}
			for !j.State().Terminal() {
				time.Sleep(20 * time.Microsecond)
			}
			if st := j.State(); st != serve.StateSucceeded {
				b.Fatalf("job %s: state %s", j.ID(), st)
			}
		}
		b.StopTimer()
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "jobs/s")
		}
	})
	b.Run("metrics", func(b *testing.B) {
		// 256 append+follow pairs per iteration keep the op long enough
		// for stable min-of-N ns while allocs/op stays an exact count.
		const pairs = 256
		ring := serve.NewRing(1024)
		rec := serve.Record{Loss: 2.5, GradNorm: 1.25, WireElems: 1 << 20, WireBytes: 4 << 20}
		var cursor int64
		step := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for p := 0; p < pairs; p++ {
				step++
				rec.Step = step
				ring.Append(rec)
				var ok bool
				if _, cursor, ok = ring.Next(cursor, nil); !ok {
					b.Fatal("follower lost the live ring")
				}
			}
		}
	})
}
