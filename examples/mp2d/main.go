// mp2d: the paper's deployment topology (§10.1) at laptop scale — Megatron
// tensor model parallelism inside each "node", data parallelism across
// them. An 8-rank world becomes a 4-way-MP × 2-way-DP grid; each replica
// runs a full Megatron transformer block (head-parallel attention +
// tensor-parallel MLP) over its half of the batch, and weight gradients
// synchronize across the DP groups.
package main

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/mp"
)

func main() {
	const (
		mpSize = 4
		dpSize = 2
		world  = mpSize * dpSize
		hidden = 64
		heads  = 8
		seq    = 16
		perDP  = 4
	)
	batch := perDP * dpSize
	m := batch * seq
	x := make([]float32, m*hidden)
	dy := make([]float32, m*hidden)
	for i := range x {
		x[i] = float32(i%13)*0.01 - 0.06
		dy[i] = float32(i%7)*0.01 - 0.03
	}

	fmt.Printf("topology: %d ranks = %d-way MP (in-node) x %d-way DP (across nodes)\n",
		world, mpSize, dpSize)
	fmt.Printf("block: hidden %d, %d attention heads (%d heads per MP rank)\n\n",
		hidden, heads, heads/mpSize)

	w := comm.NewWorld(world)
	w.Run(func(c *comm.Comm) {
		// Comm.Split carves the world into process groups MPI-style:
		// MPGroup/DPGroup are Split(color=node, key=rank) and
		// Split(color=slot, key=rank) with "mp"/"dp" traffic labels.
		mpGroup, err := c.MPGroup(mpSize)
		if err != nil {
			panic(err)
		}
		dpGroup, err := c.DPGroup(mpSize)
		if err != nil {
			panic(err)
		}
		replica := c.Rank() / mpSize

		blk := mp.NewParallelBlock(mpGroup, hidden, heads, 42)

		lo := replica * perDP * seq * hidden
		hi := (replica + 1) * perDP * seq * hidden
		blk.Forward(x[lo:hi], perDP, seq)
		blk.Backward(dy[lo:hi])

		// DP sync of the MP-shard gradients (each DP group shares the same
		// logical shard).
		for _, g := range [][]float32{
			blk.Attn.DWQKV, blk.Attn.DWProj, blk.MLP.FC1.DW, blk.MLP.FC2.DW,
			blk.DGamma1, blk.DBeta1, blk.DGamma2, blk.DBeta2,
		} {
			dpGroup.AllReduceAvg(g)
		}

		if c.Rank() == 0 {
			fmt.Printf("rank 0: MP group rank %d/%d, DP group rank %d/%d\n",
				mpGroup.Rank(), mpGroup.Size(), dpGroup.Rank(), dpGroup.Size())
			fmt.Printf("rank 0 attention shard: WQKV %d elems (1/%d of %d), WProj %d elems\n",
				len(blk.Attn.WQKV), mpSize, hidden*3*hidden, len(blk.Attn.WProj))
		}
	})

	fmt.Println("\nper-rank traffic (elements sent, per group label):")
	for r := 0; r < world; r++ {
		st := w.Stats(r)
		fmt.Printf("  rank %d: total %6d | MP group %6d | DP group %6d\n",
			r, st.ElemsSent,
			st.PerGroup["mp"].Elems,
			st.PerGroup["dp"].Elems)
	}
	fmt.Println("\nMP traffic stays inside the 'node' (NVSwitch); only the DP sync crosses —")
	fmt.Println("the topology split that lets ZeRO scale where cross-node MP collapses (Fig. 2).")
}
