// Quickstart: train a small GPT-2-like model on a simulated 4-GPU cluster
// through the declarative Engine API — the checked-in config.json describes
// the run (ZeRO-DP stage 2, mixed precision, gradient accumulation), and
// the training loop is the paper's three calls: Forward, Backward, Step.
// A baseline data-parallel run (the same engine at stage 0) shows what
// partitioning and accumulation buy in memory and wire traffic.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/zero"
)

//go:embed config.json
var configJSON []byte

func main() {
	cfg, err := engine.ParseConfig(configJSON)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err = cfg.Normalized()
	if err != nil {
		log.Fatal(err)
	}
	const steps = 20
	psi := cfg.Model.ParamCount()
	fmt.Printf("config: stage %s | %d ranks | global batch %d = %d micro × %d accumulation steps\n",
		cfg.Stage, cfg.Ranks, cfg.GlobalBatch, cfg.MicroBatch, cfg.GradAccumSteps)
	fmt.Printf("model: %d layers, hidden %d → Ψ = %d parameters\n\n", cfg.Model.Layers, cfg.Model.Hidden, psi)

	ids, targets := model.SyntheticBatch(42, cfg.GlobalBatch, cfg.Model.Seq, cfg.Model.Vocab)

	// Baseline: the same engine, config switched to replicated DP (stage 0,
	// fp32) — every rank all-reduces every micro-batch's full gradient.
	ddpCfg := cfg
	ddpCfg.Stage = "0"
	ddpCfg.FP16 = false
	var ddpLoss float64
	ddpWorld, err := engine.Run(ddpCfg, func(e *engine.Engine) {
		for s := 0; s < steps; s++ {
			l := e.TrainBatch(ids, targets)
			if e.Rank() == 0 {
				ddpLoss = l
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// The configured run: ZeRO stage 2 with fp16 wire traffic, bucketed
	// overlap, and the gradient accumulated post-reduce-scatter — so each
	// rank's cross-micro-batch state is its Ψ/N partition (§5.2), and only
	// ONE parameter all-gather happens per boundary.
	var zeroLoss float64
	var stateBytes int64
	var accumElems int
	zeroWorld, err := engine.Run(cfg, func(e *engine.Engine) {
		// The explicit lifecycle, spelled out once (TrainBatch wraps it):
		seqLen := len(ids) / cfg.GlobalBatch
		mt := cfg.MicroBatch * seqLen
		for s := 0; s < steps; s++ {
			for j := 0; j < cfg.GradAccumSteps; j++ {
				e.Forward(ids[j*mt:(j+1)*mt], targets[j*mt:(j+1)*mt])
				e.Backward()
				e.Step() // fires on the k-th micro-batch only
			}
			if e.Rank() == 0 && (s == 0 || (s+1)%5 == 0) {
				fmt.Printf("  step %2d  loss %.4f\n", s+1, e.BatchLoss())
			}
		}
		if e.Rank() == 0 {
			zeroLoss = e.BatchLoss()
			stateBytes = e.ModelStateBytes()
			accumElems = e.GradAccumElems()
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfinal loss:  ZeRO Pos+g %.4f  |  baseline DP %.4f  (same descent)\n", zeroLoss, ddpLoss)
	fmt.Printf("model-state memory per rank: ZeRO %d bytes vs DP %d bytes (%.1fx reduction)\n",
		stateBytes, int64(psi)*16, float64(psi*16)/float64(stateBytes))
	fmt.Printf("gradient state across micro-batches: %d elems (Ψ/N — never the full Ψ=%d, §5.2)\n",
		accumElems, psi)
	zs, ds := zeroWorld.Stats(0), ddpWorld.Stats(0)
	k := cfg.GradAccumSteps
	fmt.Printf("wire elems per optimizer step per rank: ZeRO %d vs DP %d — (k+1)/2k = %.2f of DDP at k=%d\n",
		zs.ElemsSent/steps, ds.ElemsSent/steps, float64(k+1)/float64(2*k), k)
	fmt.Printf("wire bytes per optimizer step per rank: ZeRO %d (fp16, measured) vs DP %d (fp32)\n",
		zs.BytesSent/steps, ds.BytesSent/steps)
	fmt.Printf("ZeRO traffic by stream: %d elems on %q (gradient buckets overlapped with backward)\n",
		zs.PerStream[zero.StreamGrad], zero.StreamGrad)
}
