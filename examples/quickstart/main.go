// Quickstart: train a small GPT-2-like model on a simulated 4-GPU cluster
// with ZeRO-DP stage 2 (Pos+g — the paper's ZeRO-100B configuration), and
// compare its per-rank model-state memory and wire traffic against baseline
// data parallelism.
package main

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/model"
	"repro/internal/zero"
)

func main() {
	cfg := model.Config{Layers: 4, Hidden: 64, Heads: 4, Vocab: 101, Seq: 32}
	const (
		ranks = 4
		batch = 8
		steps = 20
		lr    = 3e-3
	)
	psi := cfg.ParamCount()
	fmt.Printf("model: %d layers, hidden %d → Ψ = %d parameters\n", cfg.Layers, cfg.Hidden, psi)
	fmt.Printf("cluster: %d simulated GPUs (goroutine ranks, ring collectives)\n\n", ranks)

	ids, targets := model.SyntheticBatch(42, batch, cfg.Seq, cfg.Vocab)

	// Baseline DDP for reference.
	ddpWorld := comm.NewWorld(ranks)
	var ddpLoss float64
	ddpWorld.Run(func(c *comm.Comm) {
		tr := ddp.New(c, cfg, 7, lr)
		for s := 0; s < steps; s++ {
			l := tr.Step(ids, targets, batch)
			if c.Rank() == 0 {
				ddpLoss = l
			}
		}
	})

	// ZeRO stage 2, with the gradient buckets riding the grad stream under
	// backward compute — the stream-based collective API: every collective
	// is submitted to a named per-rank ordering domain and synchronized
	// with a per-op Handle, so overlapping schedules stay bitwise equal to
	// synchronous ones.
	zeroWorld := comm.NewWorld(ranks)
	var zeroLoss float64
	var stateBytes int64
	zeroWorld.Run(func(c *comm.Comm) {
		tr := zero.MustNew(c, cfg, zero.Options{
			Stage: zero.StageOSG, LR: lr, Seed: 7,
			FP16: true, BucketElems: 4096, Overlap: true,
		})
		defer tr.Close()
		var last float64
		for s := 0; s < steps; s++ {
			last = tr.Step(ids, targets, batch)
			if c.Rank() == 0 && (s == 0 || (s+1)%5 == 0) {
				fmt.Printf("  step %2d  loss %.4f\n", s+1, last)
			}
		}
		if c.Rank() == 0 {
			zeroLoss = last
			stateBytes = tr.ModelStateBytes()
		}
	})

	fmt.Printf("\nfinal loss:  ZeRO Pos+g %.4f  |  baseline DDP %.4f  (same descent)\n",
		zeroLoss, ddpLoss)
	fmt.Printf("model-state memory per rank: ZeRO %d bytes vs DDP %d bytes (%.1fx reduction)\n",
		stateBytes, int64(psi)*16, float64(psi*16)/float64(stateBytes))
	zs, ds := zeroWorld.Stats(0), ddpWorld.Stats(0)
	fmt.Printf("wire traffic per step per rank: ZeRO %d elems, DDP %d elems (equal, §7.2.1)\n",
		zs.ElemsSent/steps, ds.ElemsSent/steps)
	fmt.Printf("wire bytes per step per rank:   ZeRO %d (fp16, measured) vs DDP %d (fp32)\n",
		zs.BytesSent/steps, ds.BytesSent/steps)
	fmt.Printf("ZeRO traffic by stream: %d elems on %q (all gradient collectives overlapped)\n",
		zs.PerStream[zero.StreamGrad], zero.StreamGrad)
}
