// Elastic checkpointing & fault tolerance walkthrough: ZeRO's Ψ/N-sharded
// training state is not tied to the world size that produced it, and a
// world that loses a rank is not lost.
//
//  1. ZELC reshard round trip: an 8-rank checkpoint reshards to 4 ranks
//     and back bitwise — pure range arithmetic on the Ψ/N partitions, no
//     retraining, no float ever rewritten.
//  2. Elastic resume: a run snapshotted at step 4 on 8 ranks finishes on
//     4 ranks with a matching loss trajectory (tolerance-level: the
//     reduction tree changed) and finishes on 8 ranks bitwise-identically
//     to the uninterrupted run.
//  3. Kill & recover: a deterministic rank kill mid-run fails the world
//     cleanly, and the zeroserve supervisor restarts the job from its
//     last boundary snapshot — the run still reaches its step budget.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/elastic"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/zero"
)

var mcfg = model.Config{Layers: 2, Hidden: 32, Heads: 4, Vocab: 31, Seq: 12}

const (
	batch    = 16
	snapStep = 4 // boundary the elastic resume restarts from
	endStep  = 8
)

func opts(seed int64) zero.Options {
	return zero.Options{Stage: zero.StageOSG, LR: 1e-3, Seed: seed}
}

func main() {
	demoReshard()
	demoElasticResume()
	demoKillRecover()
}

// trainAndCapture runs `steps` optimizer steps on n ranks and returns the
// per-step per-rank local losses (steps × n; rank r's loss covers its
// batch/n rows, so only the mean across ranks is comparable between world
// sizes) plus a consolidated elastic checkpoint captured at capAt
// (0 = none).
func trainAndCapture(n, steps, capAt int) ([][]float64, *elastic.Checkpoint) {
	ids, targets := model.SyntheticBatch(42, batch, mcfg.Seq, mcfg.Vocab)
	losses := make([][]float64, steps)
	for s := range losses {
		losses[s] = make([]float64, n)
	}
	shards := make([]zero.ShardState, n)
	w := comm.NewWorld(n)
	w.Run(func(c *comm.Comm) {
		tr := zero.MustNew(c, mcfg, opts(9))
		defer tr.Close()
		for s := 1; s <= steps; s++ {
			losses[s-1][c.Rank()] = tr.Step(ids, targets, batch)
			if s == capAt {
				tr.CaptureShard(&shards[c.Rank()])
			}
		}
	})
	if capAt == 0 {
		return losses, nil
	}
	ck, err := elastic.FromShards(shards)
	if err != nil {
		log.Fatal(err)
	}
	return losses, ck
}

// resume loads a consolidated snapshot into a fresh m-rank world (a
// different init seed, so the state demonstrably comes from the
// checkpoint) and trains from snapStep to endStep, returning the per-step
// per-rank local losses.
func resume(m int, snap *zero.Snapshot) [][]float64 {
	ids, targets := model.SyntheticBatch(42, batch, mcfg.Seq, mcfg.Vocab)
	losses := make([][]float64, endStep-snapStep)
	for s := range losses {
		losses[s] = make([]float64, m)
	}
	w := comm.NewWorld(m)
	w.Run(func(c *comm.Comm) {
		tr := zero.MustNew(c, mcfg, opts(4242))
		defer tr.Close()
		if err := tr.Load(snap); err != nil {
			log.Fatal(err)
		}
		for s := snapStep + 1; s <= endStep; s++ {
			losses[s-snapStep-1][c.Rank()] = tr.Step(ids, targets, batch)
		}
	})
	return losses
}

// globalLoss folds equal-weight rank-local losses into the global batch
// mean (every rank computes batch/n rows), summing in rank order so the
// value is deterministic for a given world size.
func globalLoss(local []float64) float64 {
	sum := 0.0
	for _, l := range local {
		sum += l
	}
	return sum / float64(len(local))
}

func demoReshard() {
	fmt.Println("== 1. ZELC reshard round trip ==")
	_, ck := trainAndCapture(8, 3, 3)
	blob, err := ck.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-rank stage-%d checkpoint: Ψ = %d params, %d opt steps → %d bytes encoded (ZELC v%d)\n",
		int(ck.Stage), ck.NumParams, ck.OptSteps, len(blob), elastic.Version)
	if _, err := elastic.Decode(blob); err != nil {
		log.Fatal(err)
	}

	half, err := ck.Reshard(4)
	if err != nil {
		log.Fatal(err)
	}
	back, err := half.Reshard(8)
	if err != nil {
		log.Fatal(err)
	}
	a, b := ck.Snapshot(), back.Snapshot()
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			log.Fatalf("param %d changed across 8→4→8 reshard", i)
		}
	}
	for k := range a.Opt {
		for i := range a.Opt[k] {
			if a.Opt[k][i] != b.Opt[k][i] {
				log.Fatalf("opt tensor %d elem %d changed across 8→4→8 reshard", k, i)
			}
		}
	}
	fmt.Printf("8 → 4 → 8 reshard: every shard range re-split, all %d params + %d opt tensors bitwise intact\n\n",
		ck.NumParams, len(a.Opt))
}

func demoElasticResume() {
	fmt.Println("== 2. elastic resume: N=8 → M=4 and N=8 → N=8 ==")
	ref, ck := trainAndCapture(8, endStep, snapStep)
	fmt.Printf("reference on 8 ranks, snapshot at step %d: global loss %.4f → %.4f\n",
		snapStep, globalLoss(ref[0]), globalLoss(ref[endStep-1]))

	ck4, err := ck.Reshard(4)
	if err != nil {
		log.Fatal(err)
	}
	shrunk := resume(4, ck4.Snapshot())
	fmt.Printf("resumed on 4 ranks from the resharded snapshot:\n")
	for i, local := range shrunk {
		step := snapStep + 1 + i
		l, want := globalLoss(local), globalLoss(ref[step-1])
		diff := math.Abs(l - want)
		fmt.Printf("  step %d: global loss %.6f (uninterrupted %.6f, |Δ| %.2e)\n", step, l, want, diff)
		if diff > 1e-3 {
			log.Fatalf("step %d: shrunk-world loss diverged beyond tolerance", step)
		}
	}

	same := resume(8, ck.Snapshot())
	for i, local := range same {
		for r, l := range local {
			if l != ref[snapStep+i][r] {
				log.Fatalf("step %d rank %d: same-world resume is not bitwise (%.17g != %.17g)",
					snapStep+1+i, r, l, ref[snapStep+i][r])
			}
		}
	}
	fmt.Printf("resumed on 8 ranks from the same snapshot: steps %d–%d bitwise-identical to the uninterrupted run\n\n",
		snapStep+1, endStep)
}

func demoKillRecover() {
	fmt.Println("== 3. kill & recover through the zeroserve supervisor ==")
	sched, err := serve.NewScheduler(serve.Config{MaxWorlds: 1, QueueDepth: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		sched.Drain(ctx) //nolint:errcheck // example teardown
	}()

	cfg := engine.DefaultConfig()
	cfg.Model = mcfg
	cfg.Ranks = 2
	cfg.Stage = "2"
	cfg.GlobalBatch, cfg.MicroBatch, cfg.GradAccumSteps = 8, 4, 2
	cfg.Seed = 11
	spec := serve.Spec{
		Steps:         6,
		Config:        cfg,
		SnapshotEvery: 1,
		MaxRestarts:   1,
		Fault:         &serve.FaultSpec{Rank: 1, Step: 3},
	}
	fmt.Printf("job: %d steps on %d ranks, snapshot every step, fault: kill rank %d after step %d\n",
		spec.Steps, cfg.Ranks, spec.Fault.Rank, spec.Fault.Step)
	j, err := sched.Submit(spec)
	if err != nil {
		log.Fatal(err)
	}
	for !j.State().Terminal() {
		time.Sleep(5 * time.Millisecond)
	}
	st := j.Status()
	if st.State != serve.StateSucceeded {
		log.Fatalf("job %s: state %s (%s)", st.ID, st.State, st.Error)
	}
	fmt.Printf("rank %d died mid-run; supervisor restarted from the last boundary snapshot\n", spec.Fault.Rank)
	fmt.Printf("job %s: %s after %d restart(s), %d/%d steps, final loss %.4f\n",
		st.ID, st.State, st.Restarts, st.StepsDone, st.Steps, st.LastLoss)
}
