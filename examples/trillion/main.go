// Trillion: the paper's §9 analysis — what it takes to fit a 1T-parameter
// model on today's hardware. Reproduces the two configurations the paper
// names: Pos+g+p across 1024 GPUs with DP only, and Pos+g with 16-way model
// parallelism inside each DGX-2 node plus 64-way DP across nodes.
package main

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/zero"
)

func main() {
	const psi = 1_000_000_000_000
	const budget = 32.0 // GB per V100

	fmt.Println("Fitting 1T parameters (mixed-precision Adam: 16 bytes/param = 16 TB of model states)")

	fmt.Println("\nOption A: ZeRO-DP stage 3 (Pos+g+p), DP only:")
	for _, nd := range []int{256, 512, 1024} {
		gb := zero.ModelStateGB(psi, zero.StageOSGP, nd)
		fits := "OOM"
		if gb <= budget {
			fits = "fits"
		}
		fmt.Printf("  Nd=%4d: %8.1f GB/GPU  -> %s\n", nd, gb, fits)
	}
	// Stage 3's 3Ψ schedule only pays off if the extra Ψ of parameter
	// gathers hides behind compute — the prefetch stream's job (§7.2.2).
	{
		hw := perfmodel.DGX2()
		shape := perfmodel.GPT2Like(125, 8192, 64) // 100B stand-in at DP scale
		mk := func(prefetch bool) perfmodel.Breakdown {
			return perfmodel.Estimate(hw, perfmodel.Config{
				Shape: shape, MP: 1, DP: 1024, MicroBatch: 8,
				ZeRO: perfmodel.ZeROConfig{Stage: 3, Prefetch: prefetch},
			})
		}
		syncB, preB := mk(false), mk(true)
		fmt.Printf("  stage-3 gather time per step: %.0f ms total; exposed %.0f ms sync vs %.0f ms prefetched\n",
			syncB.GatherSec*1e3, syncB.ExposedGatherSec*1e3, preB.ExposedGatherSec*1e3)
	}

	fmt.Println("\nOption B: full ZeRO (Pos+g+p) + 16-way MP in the node, 64-way DP (Table 2, §9):")
	perGPU := zero.ModelStateGB(psi, zero.StageOSGP, 64) / 16
	fmt.Printf("  (16Ψ/64) / 16 = %.1f GB/GPU on 1024 GPUs -> fits, with a practical batch size\n", perGPU)

	// Residual states (§6): at 1T scale the activations rival the model
	// states, and the fp16 compute path halves them — 2-byte storage with
	// fp32 accumulation. Run both precisions live at miniature scale and
	// read the activation width and per-rank compute residency off the
	// real trainer.
	fmt.Println("\nMixed precision (§6): fp16 activations + weight views, fp32 accumulation (measured):")
	{
		f32 := experiments.MeasureComputeResidency(false)
		f16 := experiments.MeasureComputeResidency(true)
		fmt.Println("  precision       act B/elem   workspace/rank   compute resident/rank")
		fmt.Printf("  fp32            %10d   %12d B   %15d B\n",
			f32.ActBytesPerElem, f32.WorkspaceBytes, f32.ResidentBytes)
		fmt.Printf("  fp16_compute    %10d   %12d B   %15d B  (%.1f%%)\n",
			f16.ActBytesPerElem, f16.WorkspaceBytes, f16.ResidentBytes,
			100*float64(f16.ResidentBytes)/float64(f32.ResidentBytes))
		fmt.Println("  at 1T scale the same 4 -> 2 B/elem cut halves the §6 activation ballast")
	}

	// Why the DP collectives survive the node uplink at all: route them
	// hierarchically and only 1/nodeSize of the volume crosses nodes. Run
	// the real two-level all-reduce at miniature scale (8 "GPUs", 2 nodes
	// of 4) and read the measured split off the wire, then scale the same
	// closed form to the paper's 16-GPU DGX-2 nodes.
	fmt.Println("\nTopology: the two-level DP all-reduce, measured on the simulator:")
	{
		const miniPsi = 1 << 16
		const nodeSize, nodes = 4, 2
		w := comm.NewWorld(nodeSize * nodes)
		w.Run(func(c *comm.Comm) {
			if err := c.AllReduceHierarchical(comm.F16Buf(make([]float32, miniPsi)), nodeSize); err != nil {
				panic(err)
			}
		})
		st := w.Stats(0)
		intra, inter := st.PerGroup["hier-intra"], st.PerGroup["hier-inter"]
		fmt.Printf("  %d ranks as %d nodes x %d: per-rank %d B stay in-node, %d B cross (%.0fx cut)\n",
			nodeSize*nodes, nodes, nodeSize, intra.Bytes, inter.Bytes,
			float64(intra.Bytes+inter.Bytes)/float64(inter.Bytes))
		hw := perfmodel.DGX2()
		measuredBW := hw.SplitDPBandwidth(float64(intra.Bytes), float64(inter.Bytes))
		fmt.Printf("  same split on DGX-2 bandwidths -> %.0f GB/s effective per GPU;\n", measuredBW/1e9)
		fmt.Printf("  at the paper's scale (16-GPU nodes, 25 nodes): %.0f GB/s vs %.1f GB/s flat uplink share\n",
			hw.HierarchicalDPBandwidth(16, 25)/1e9, hw.InterNodeBWPerGPU/1e9)
	}

	// Large global batches on fixed memory (§5.2): the batch a 1T run needs
	// for efficiency far exceeds what fits per device, so the engine
	// accumulates micro-batches — and because gradients are reduce-scattered
	// as each micro-batch's buckets complete, the state carried across
	// micro-batches is the Ψ/N partition, never Ψ. Run it live at miniature
	// scale and read the residency and wire volume off the simulator.
	fmt.Println("\nGradient accumulation: k× the global batch on a fixed Ψ/N accumulator:")
	{
		cfg := engine.DefaultConfig()
		cfg.Model = model.Config{Layers: 2, Hidden: 32, Heads: 4, Vocab: 31, Seq: 8}
		cfg.Ranks = 4
		cfg.Stage = "2"
		cfg.Optimizer.LR = 1e-3
		psiMini := int64(cfg.Model.ParamCount())
		for _, k := range []int{1, 4} {
			cfg.GlobalBatch, cfg.MicroBatch, cfg.GradAccumSteps = 4*k, 4, k
			ids, targets := model.SyntheticBatch(3, cfg.GlobalBatch, cfg.Model.Seq, cfg.Model.Vocab)
			var accumElems int
			w, err := engine.Run(cfg, func(e *engine.Engine) {
				e.TrainBatch(ids, targets)
				if e.Rank() == 0 {
					accumElems = e.GradAccumElems()
				}
			})
			if err != nil {
				panic(err)
			}
			fmt.Printf("  k=%d: global batch %2d, accumulator %d elems (Ψ/N of %d), %6d elems on the wire\n",
				k, cfg.GlobalBatch, accumElems, psiMini, w.TotalElemsSent())
		}
		fmt.Println("  4x the batch, same gradient residency; wire grows (k+1)/2, not 2k/2 as in DDP")
	}

	fmt.Println("\nCompute-power gap (§9): even fitted, 1T is compute-bound.")
	shape := perfmodel.Shape{Layers: 1000, Hidden: 9216, Heads: 72,
		Vocab: perfmodel.DefaultVocab, Seq: perfmodel.DefaultSeq}
	fmt.Printf("  representative 1T shape: %d layers x hidden %d = %.2fT params\n",
		shape.Layers, shape.Hidden, float64(shape.Params())/1e12)
	hw := perfmodel.DGX2()
	cfg := perfmodel.Config{Shape: shape, MP: 16, DP: 64, MicroBatch: 8,
		ZeRO: perfmodel.ZeROConfig{Stage: 2, Pa: true}}
	b := perfmodel.Estimate(hw, cfg)
	agg := b.TFlopsPerGPU * 1024 / 1e3
	// Tokens needed scale with parameters; assume 300B tokens (GPT-3-class).
	const tokens = 300e9
	stepsNeeded := tokens / float64(cfg.TotalBatch()*shape.Seq)
	days := stepsNeeded * b.StepSec / 86400
	fmt.Printf("  modeled: %.1f TFlops/GPU, %.1f PFlops aggregate on 1024 V100s\n",
		b.TFlopsPerGPU, agg)
	fmt.Printf("  300B tokens -> ~%.0f days: ZeRO makes 1T *fit*; an exaflop system makes it *fast*\n",
		days)
}
