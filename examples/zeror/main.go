// ZeRO-R walkthrough: the three residual-memory mechanisms of §6 on the
// simulated device and communicator.
//
//  1. MD — memory defragmentation: an interleaved short/long-lived
//     allocation pattern OOMs from fragmentation even with free memory to
//     spare; routing the long-lived tensors through a pre-allocated
//     contiguous region fixes it.
//  2. Pa — partitioned activation checkpointing: an MP-replicated
//     checkpoint is stored at 1/Nm per rank and re-gathered on demand,
//     with the §8 traffic accounting printed.
//  3. CB — constant-size buffers: fused-buffer memory stays flat as the
//     model grows.
package main

import (
	"errors"
	"fmt"

	"repro/internal/comm"
	"repro/internal/device"
	"repro/internal/zero"
)

func main() {
	demoMD()
	demoPa()
	demoCB()
}

func demoMD() {
	fmt.Println("== MD: memory defragmentation ==")
	const cap = 1 << 20
	run := func(useRegion bool) error {
		d := device.New(cap)
		var region *device.Region
		if useRegion {
			region, _ = d.NewRegion(cap / 2)
		}
		var short []device.Block
		for i := 0; i < 8; i++ {
			s, err := d.Alloc(cap / 16) // short-lived activation
			if err != nil {
				return err
			}
			short = append(short, s)
			if useRegion {
				if _, err := region.Alloc(cap / 16); err != nil { // checkpoint
					return err
				}
			} else {
				if _, err := d.Alloc(cap / 16); err != nil {
					return err
				}
			}
		}
		for _, b := range short {
			d.Free(b)
		}
		_, err := d.Alloc(cap / 4) // the big request that fragmentation kills
		return err
	}
	err := run(false)
	var oom *device.OOMError
	if errors.As(err, &oom) {
		fmt.Printf("  without MD: OOM (fragmented=%v, free=%d, largest contiguous=%d)\n",
			oom.Fragmented, oom.FreeTotal, oom.LargestFree)
	}
	if err := run(true); err == nil {
		fmt.Println("  with MD region: same trace succeeds — checkpoints no longer shred the heap")
	}
}

func demoPa() {
	fmt.Println("\n== Pa: partitioned activation checkpointing ==")
	const mpDegree, elems = 4, 1 << 16
	ckpt := make([]float32, elems)
	for i := range ckpt {
		ckpt[i] = float32(i % 97)
	}
	w := comm.NewWorld(mpDegree)
	w.Run(func(c *comm.Comm) {
		// Pa gathers ride their own ordering domain, so they compose with
		// whatever the grad/prefetch streams have in flight.
		sched := comm.NewScheduler(c)
		defer sched.Close()
		store := zero.NewPartitionedStore(sched.Stream(zero.StreamCheckpoint), false)
		store.Put(0, ckpt)  // forward: keep only 1/Nm
		got := store.Get(0) // backward: all-gather before recompute
		if c.Rank() == 0 {
			fmt.Printf("  checkpoint: %d elems; resident/rank: %d bytes (1/%d of %d)\n",
				elems, store.DeviceBytes(), mpDegree, elems*2)
			ok := true
			for i := range got {
				if got[i] != ckpt[i] {
					ok = false
					break
				}
			}
			fmt.Printf("  reconstruction exact: %v; all-gather sent %d elems/rank (= E(Nm-1)/Nm)\n",
				ok, w.Stats(0).ElemsSent)
		}
	})
}

func demoCB() {
	fmt.Println("\n== CB: constant-size fused buffers ==")
	fmt.Printf("%-8s %-22s %-18s\n", "Model", "Fused fp32 buffer (4Ψ)", "CB buffer")
	for _, psi := range []int64{1_500_000_000, 8_000_000_000, 100_000_000_000} {
		shape := zero.ShapeForParams(psi)
		with := zero.ResidualBytes(shape, zero.ResidualConfig{Batch: 1, Seq: 1024, MP: 1, CB: true})
		without := zero.ResidualBytes(shape, zero.ResidualConfig{Batch: 1, Seq: 1024, MP: 1})
		fmt.Printf("%-8s %10.1f GB          %10.2f GB\n",
			fmt.Sprintf("%.1fB", float64(psi)/1e9),
			(without-with)/zero.GB+0.256, 0.256)
	}
	fmt.Println("  (§6.2: buffer memory decoupled from model size, still large enough for bandwidth)")
}
