// Democratize: the paper's §10.4 story. Data scientists get 13B-parameter
// training with plain data parallelism — no model parallelism, no model
// refactoring — because ZeRO removes the replicated model states that make
// baseline DP run out of memory at 1.4B.
//
// The example first plans memory for the paper-scale models (13B on 128
// V100s), then demonstrates the identical API at laptop scale: the same
// engine config that would drive the 13B run trains a small model across
// simulated ranks, stage 3 partitioning everything.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/zero"
)

func main() {
	// Part 1: the memory plan that makes 13B-without-MP possible.
	const (
		gpus   = 128
		budget = 32 * zero.GB
	)
	fmt.Println("Per-GPU model-state memory on 128 GPUs (32 GB V100s):")
	fmt.Printf("%-8s %-14s %-14s %-10s\n", "Model", "Baseline DP", "ZeRO Pos+g", "Fits?")
	for _, m := range []struct {
		label string
		psi   int64
	}{
		{"1.4B", 1_400_000_000},
		{"8B", 8_000_000_000},
		{"13B", 13_000_000_000},
		{"100B", 100_000_000_000},
	} {
		base := zero.ModelStateGB(m.psi, zero.StageDP, gpus)
		z := zero.ModelStateGB(m.psi, zero.StageOSG, gpus)
		verdict := "baseline OOM, ZeRO OK"
		switch {
		case base*zero.GB <= budget:
			verdict = "both fit"
		case z*zero.GB > budget:
			verdict = "needs stage 3 / MP"
		}
		fmt.Printf("%-8s %9.1f GB  %9.1f GB   %s\n", m.label, base, z, verdict)
	}

	// Part 2: the same API at laptop scale, with full partitioning (stage
	// 3) through the declarative engine config — the data scientist writes
	// a config, not a parallelization strategy.
	fmt.Println("\nTraining through engine.Initialize at stage 3 (Pos+g+p), 4 ranks:")
	cfg := engine.DefaultConfig()
	cfg.Model = model.Config{Layers: 3, Hidden: 48, Heads: 4, Vocab: 67, Seq: 24}
	cfg.Stage = "3"
	cfg.Seed = 11
	cfg.GlobalBatch, cfg.MicroBatch, cfg.GradAccumSteps = 8, 0, 1
	ids, targets := model.SyntheticBatch(1, cfg.GlobalBatch, cfg.Model.Seq, cfg.Model.Vocab)
	if _, err := engine.Run(cfg, func(e *engine.Engine) {
		for s := 0; s < 15; s++ {
			loss := e.TrainBatch(ids, targets)
			if e.Rank() == 0 && s%5 == 0 {
				own := e.Owned()
				fmt.Printf("  step %2d  loss %.4f  (rank 0 stores params [%d,%d) of %d)\n",
					s, loss, own.Lo, own.Hi, e.NumParams())
			}
		}
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNo model refactoring: the model code is identical under DDP and every ZeRO stage.")
}
