#!/bin/sh
# Regenerate the data-pipeline baseline (BENCH_DATA.json): the streaming
# corpus loader (chunked reads, framing, tokenization, shuffle, packing)
# in tokens/sec and allocs per micro-batch, for the byte and BPE
# tokenizers. The per-batch op is microseconds, so the default benchtime
# is high to keep min-of-N ns/op stable under scheduler noise.
set -eu
exec "$(dirname "$0")/bench.sh" "${1:-2000x}" '^BenchmarkDataPipeline$' BENCH_DATA.json
