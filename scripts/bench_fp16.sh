#!/bin/sh
# Regenerate the fp16 compute-path baseline (BENCH_FP16.json): one ZeRO
# step at stage 2 (overlap) and stage 3 (overlap + prefetch) in both
# precisions, so the committed baseline pins the fp16-vs-fp32 step-time
# ratio alongside the 2-byte compute residency (resident-B/rank) and wire
# volume. allocs/op is the hard gate: the half kernels must stay on the
# pooled-scratch discipline.
set -eu
exec "$(dirname "$0")/bench.sh" "${1:-10x}" '^BenchmarkFP16Step$' BENCH_FP16.json
