#!/bin/sh
# Regenerate a benchmark baseline JSON.
#
# Usage: scripts/bench.sh [benchtime] [pattern] [out]
#   default: 10x, the stage-API suite, BENCH_STAGE_API.json
#
# BENCH_COUNT (default 3) repeats the suite and keeps the per-benchmark
# minimum ns/op — min-of-N is the standard defense against scheduler noise
# on shared machines. The emitted JSON records the bench pattern and
# benchtime so scripts/bench_compare.sh can re-run the identical suite and
# diff ns/op.
set -eu
cd "$(dirname "$0")/.."
BENCHTIME="${1:-10x}"
PATTERN="${2:-StageStep|StreamReduceScatter1M|^BenchmarkReduceScatter1M\$}"
OUT="${3:-BENCH_STAGE_API.json}"
COUNT="${BENCH_COUNT:-3}"
SUITE="$(basename "$OUT" .json | tr 'A-Z_' 'a-z-')"

go test -run=NONE -bench="$PATTERN" -benchtime="$BENCHTIME" -count="$COUNT" . |
	awk -v benchtime="$BENCHTIME" -v pattern="$PATTERN" -v suite="$SUITE" '
	/^goos:/   { goos = $2 }
	/^goarch:/ { goarch = $2 }
	/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
	/^Benchmark/ {
		name = $1; iters = $2; ns = $3 + 0
		if (!(name in best) || ns < best[name]) {
			best[name] = ns
			bestIters[name] = iters
			extra = ""
			for (i = 5; i < NF; i += 2) {
				unit = $(i + 1)
				gsub(/\//, "_per_", unit)
				gsub(/[^A-Za-z0-9_]/, "_", unit)
				extra = extra sprintf(", \"%s\": %s", unit, $i)
			}
			bestExtra[name] = extra
		}
		if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
	}
	END {
		print "{"
		printf "  \"suite\": \"%s\",\n", suite
		printf "  \"benchtime\": \"%s\",\n", benchtime
		gsub(/\\/, "\\\\", pattern)
		printf "  \"pattern\": \"%s\",\n", pattern
		printf "  \"results\": ["
		for (i = 1; i <= n; i++) {
			name = order[i]
			if (i > 1) printf ","
			printf "\n    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s%s}",
				name, bestIters[name], best[name], bestExtra[name]
		}
		printf "\n  ],\n"
		printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"\n", goos, goarch, cpu
		print "}"
	}' >"$OUT"
echo "wrote $OUT"
