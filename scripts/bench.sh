#!/bin/sh
# Regenerate the stage-API benchmark baseline (BENCH_STAGE_API.json).
# Usage: scripts/bench.sh [benchtime]   (default 10x, matching the
# committed baseline)
set -eu
cd "$(dirname "$0")/.."
BENCHTIME="${1:-10x}"

go test -run=NONE -bench='StageStep|AsyncReduceScatter1M|^BenchmarkReduceScatter1M$' \
	-benchtime="$BENCHTIME" . |
	awk -v benchtime="$BENCHTIME" '
	BEGIN {
		print "{"
		printf "  \"suite\": \"stage-api\",\n"
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"results\": ["
		n = 0
	}
	/^goos:/   { goos = $2 }
	/^goarch:/ { goarch = $2 }
	/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
	/^Benchmark/ {
		if (n++) printf ","
		printf "\n    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", $1, $2, $3
		for (i = 5; i < NF; i += 2) {
			unit = $(i + 1)
			gsub(/\//, "_per_", unit)
			gsub(/[^A-Za-z0-9_]/, "_", unit)
			printf ", \"%s\": %s", unit, $i
		}
		printf "}"
	}
	END {
		printf "\n  ],\n"
		printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"\n", goos, goarch, cpu
		print "}"
	}' >BENCH_STAGE_API.json
echo "wrote BENCH_STAGE_API.json"
