#!/bin/sh
# Regenerate the stage-3 prefetch benchmark baseline (BENCH_PREFETCH.json):
# BenchmarkPrefetchStep sweeps stage 3 with synchronous gathers, the
# prefetch stream, and prefetch + gradient overlap.
# Usage: scripts/bench_prefetch.sh [benchtime]   (default 10x)
set -eu
cd "$(dirname "$0")/.."
exec ./scripts/bench.sh "${1:-10x}" 'PrefetchStep' BENCH_PREFETCH.json
