#!/bin/sh
# Regenerate the dense-kernel benchmark baseline (BENCH_KERNELS.json):
# BenchmarkKernels measures the three matmul orientations (forward,
# grad-input, grad-weight) at the bench FC1 shape.
# Usage: scripts/bench_kernels.sh [benchtime]   (default 100x)
set -eu
cd "$(dirname "$0")/.."
exec ./scripts/bench.sh "${1:-100x}" '^BenchmarkKernels$' BENCH_KERNELS.json
