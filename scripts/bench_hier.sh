#!/bin/sh
# Regenerate the hierarchical-topology benchmark baseline (BENCH_HIER.json):
# BenchmarkHierarchicalStep sweeps flat vs node=2 vs node=4 routing of the
# stage-2 gradient buckets and reports the measured inter-node byte share.
# Usage: scripts/bench_hier.sh [benchtime]   (default 10x)
set -eu
cd "$(dirname "$0")/.."
exec ./scripts/bench.sh "${1:-10x}" 'HierarchicalStep' BENCH_HIER.json
