#!/bin/sh
# Compare a fresh benchmark run against a committed baseline JSON and fail
# on regression.
#
# Usage: scripts/bench_compare.sh [baseline.json] [threshold-pct]
#   default: BENCH_STAGE_API.json, 10 (% ns/op slowdown allowed)
#
# The baseline records its own bench pattern and benchtime (see
# scripts/bench.sh); this script re-runs the identical suite into a temp
# file and diffs ns/op per benchmark. A benchmark present in the baseline
# but missing from the run fails (renames must update the baseline); new
# benchmarks only warn.
#
# Two gates per benchmark:
#   - ns/op: soft, > threshold-pct slower fails (wall clock is noisy on a
#     shared box; min-of-N keeps it honest).
#   - allocs/op: hard. Allocation counts are deterministic, so any growth
#     beyond 1% + 2 allocs over the committed baseline fails — the
#     regression gate behind the zero-allocation steady-state contract.
#     Baselines without the field (pre-allocs era) skip this gate.
set -eu
cd "$(dirname "$0")/.."
BASE="${1:-BENCH_STAGE_API.json}"
THRESHOLD="${2:-10}"

[ -f "$BASE" ] || { echo "bench_compare: no baseline $BASE" >&2; exit 2; }

field() { sed -n "s/.*\"$1\": \"\(.*\)\",\{0,1\}\$/\1/p" "$BASE" | head -1; }
PATTERN="$(field pattern)"
BENCHTIME="$(field benchtime)"
[ -n "$PATTERN" ] || { echo "bench_compare: baseline $BASE has no pattern field (regenerate with scripts/bench.sh)" >&2; exit 2; }

TMP="$(mktemp -t bench_compare.XXXXXX.json)"
trap 'rm -f "$TMP"' EXIT
# The comparison run takes min-of-5 (vs the baseline's min-of-3) so that
# scheduler noise on a loaded machine biases toward false passes on the
# margin rather than false failures; a real >threshold regression shows up
# in every repetition.
BENCH_COUNT="${BENCH_COUNT:-5}" ./scripts/bench.sh "$BENCHTIME" "$PATTERN" "$TMP" >/dev/null

awk -v threshold="$THRESHOLD" -v basefile="$BASE" '
	# Extract name + ns_per_op (+ allocs_per_op when present) from the
	# one-object-per-line results arrays.
	function parse(line) {
		if (match(line, /"name": "[^"]*"/) == 0) return 0
		name = substr(line, RSTART + 9, RLENGTH - 10)
		if (match(line, /"ns_per_op": [0-9.eE+-]+/) == 0) return 0
		ns = substr(line, RSTART + 13, RLENGTH - 13) + 0
		hasAllocs = 0
		allocs = 0
		if (match(line, /"allocs_per_op": [0-9.eE+-]+/)) {
			allocs = substr(line, RSTART + 17, RLENGTH - 17) + 0
			hasAllocs = 1
		}
		return 1
	}
	FNR == NR {
		if (parse($0)) {
			base[name] = ns
			if (hasAllocs) { baseAllocs[name] = allocs; baseHasAllocs[name] = 1 }
		}
		next
	}
	{
		if (parse($0)) {
			cur[name] = ns
			if (hasAllocs) { curAllocs[name] = allocs; curHasAllocs[name] = 1 }
		}
	}
	END {
		status = 0
		for (name in base) {
			if (!(name in cur)) {
				printf "FAIL %-55s missing from current run (update %s?)\n", name, basefile
				status = 1
				continue
			}
			delta = (cur[name] - base[name]) / base[name] * 100
			verdict = "ok  "
			if (delta > threshold) { verdict = "FAIL"; status = 1 }
			printf "%s %-55s %12.0f -> %12.0f ns/op  (%+6.1f%%)\n", verdict, name, base[name], cur[name], delta
			if (baseHasAllocs[name] && !curHasAllocs[name]) {
				# The hard gate must not silently vanish: a baseline with
				# the field and a run without it means the alloc-reporting
				# path rotted (ReportAllocs dropped, emitter broken).
				printf "FAIL %-55s allocs/op missing from current run (alloc reporting rotted?)\n", name
				status = 1
			} else if (baseHasAllocs[name] && curHasAllocs[name]) {
				limit = baseAllocs[name] * 1.01 + 2
				averdict = "ok  "
				if (curAllocs[name] > limit) { averdict = "FAIL"; status = 1 }
				printf "%s %-55s %12.0f -> %12.0f allocs/op (hard gate)\n", averdict, name, baseAllocs[name], curAllocs[name]
			}
		}
		for (name in cur) if (!(name in base)) printf "note %-55s new benchmark, no baseline\n", name
		if (status) printf "bench_compare: regression beyond %s%% ns/op or allocs/op growth vs %s\n", threshold, basefile
		exit status
	}' "$BASE" "$TMP"
