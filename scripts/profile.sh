#!/bin/sh
# Capture CPU and heap profiles of the stage-API step benchmark — the
# companion to the allocs/op gate: when `make bench-compare` flags an
# allocation regression, these profiles name the line that introduced it.
#
# Usage: scripts/profile.sh [benchtime] [pattern] [outdir]
#   default: 10x, BenchmarkStageStep, ./profiles
#
# Writes <outdir>/cpu.pprof, <outdir>/mem.pprof and the test binary
# <outdir>/repro.test (pprof needs it to symbolize). Read them with e.g.
#
#   go tool pprof -top                          profiles/repro.test profiles/cpu.pprof
#   go tool pprof -sample_index=alloc_objects -top profiles/repro.test profiles/mem.pprof
#   go tool pprof -sample_index=alloc_objects -lines -top profiles/repro.test profiles/mem.pprof
#
# (alloc_objects counts every allocation over the run, not just live heap —
# the steady-state discipline is about allocation *rate*, so that is the
# index to read. See README "Profiling & allocation discipline".)
set -eu
cd "$(dirname "$0")/.."
BENCHTIME="${1:-10x}"
PATTERN="${2:-BenchmarkStageStep}"
OUTDIR="${3:-profiles}"
mkdir -p "$OUTDIR"

go test -run=NONE -bench="$PATTERN" -benchtime="$BENCHTIME" \
	-cpuprofile "$OUTDIR/cpu.pprof" -memprofile "$OUTDIR/mem.pprof" \
	-o "$OUTDIR/repro.test" .

echo ""
echo "wrote $OUTDIR/cpu.pprof $OUTDIR/mem.pprof (binary: $OUTDIR/repro.test)"
echo "allocation hot spots:"
go tool pprof -sample_index=alloc_objects -top -nodecount=10 "$OUTDIR/repro.test" "$OUTDIR/mem.pprof" | sed -n '5,20p'
