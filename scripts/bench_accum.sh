#!/bin/sh
# Regenerate the gradient-accumulation baseline (BENCH_ACCUM.json): the
# Engine API's Forward/Backward/Step loop at k ∈ {1,2,4} micro-batches per
# optimizer step.
set -eu
exec "$(dirname "$0")/bench.sh" "${1:-10x}" 'BenchmarkAccumStep' BENCH_ACCUM.json
