#!/bin/sh
# Regenerate the control-plane baseline (BENCH_SERVE.json): full
# submit-to-complete job latency through the scheduler (jobs/s — world
# construction, training, checkpoint consolidation, teardown) and the
# metric-ring hot path a streaming metrics follower rides (allocs/op is
# the hard gate: the live-follow path must not allocate per record).
set -eu
exec "$(dirname "$0")/bench.sh" "${1:-100x}" '^BenchmarkServe$' BENCH_SERVE.json
