#!/bin/sh
# Regenerate the elastic-checkpointing baseline (BENCH_ELASTIC.json): the
# asynchronous boundary snapshot as the training loop sees it (capture +
# flatten + submit, with the double buffer's exposed stall reported as
# stall-ns/op), the offline N→M reshard, and the ZELC encode/decode round
# trip. allocs/op on the pure-CPU paths is the hard gate.
set -eu
exec "$(dirname "$0")/bench.sh" "${1:-20x}" '^BenchmarkElastic$' BENCH_ELASTIC.json
