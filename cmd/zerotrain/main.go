// Command zerotrain runs end-to-end training of a GPT-2-like model on a
// simulated multi-GPU cluster through the declarative Engine API, printing
// loss, throughput of the simulation, per-rank memory accounting and wire
// traffic. It is the "kick the tires" tool for the library.
//
// The run is described by a JSON config (engine.Config, ds_config-style);
// every flag overrides the corresponding config field, so a committed
// config plus a couple of flags covers most experiments:
//
//	zerotrain -config examples/quickstart/config.json
//	zerotrain -config cfg.json -stage 3 -prefetch      (override the stage)
//	zerotrain -ranks 4 -stage 2 -steps 50              (no config file: flag defaults)
//	zerotrain -batch 32 -accum 4                       (8-row micro-batches, Step fires every 4th)
//	zerotrain -ranks 8 -stage 3 -fp16 -checkpoint -clip 1.0
//	zerotrain -ranks 4 -stage 2 -save ckpt.bin -steps 20
//	zerotrain -ranks 4 -stage 2 -load ckpt.bin -steps 20
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/zero"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zerotrain: ")
	def := engine.DefaultConfig()
	var (
		configPath = flag.String("config", "", "JSON engine config (engine.Config); flags override its fields")
		ranks      = flag.Int("ranks", def.Ranks, "simulated GPU count (DP degree)")
		stage      = flag.String("stage", string(def.Stage), "ZeRO stage: 0/ddp, 1/os, 2/os+g, 3/full")
		layers     = flag.Int("layers", def.Model.Layers, "transformer layers")
		hidden     = flag.Int("hidden", def.Model.Hidden, "hidden width")
		heads      = flag.Int("heads", def.Model.Heads, "attention heads")
		vocab      = flag.Int("vocab", def.Model.Vocab, "vocabulary size")
		seq        = flag.Int("seq", def.Model.Seq, "sequence length")
		batch      = flag.Int("batch", def.GlobalBatch, "global batch size per optimizer step")
		microB     = flag.Int("micro", def.MicroBatch, "micro-batch size per Forward/Backward (global rows)")
		accum      = flag.Int("accum", def.GradAccumSteps, "gradient accumulation steps per optimizer step")
		steps      = flag.Int("steps", 30, "optimizer steps to train")
		opt        = flag.String("opt", def.Optimizer.Type, "optimizer: adam, sgd or lamb")
		lr         = flag.Float64("lr", def.Optimizer.LR, "learning rate")
		clip       = flag.Float64("clip", def.GradClip, "gradient clipping norm (0 = off)")
		fp16       = flag.Bool("fp16", def.FP16, "simulate mixed-precision training")
		checkpoint = flag.Bool("checkpoint", def.Checkpoint, "activation checkpointing")
		bucket     = flag.Int("bucket", def.BucketElems, "gradient bucket elements (0 = one bucket per layer group)")
		overlap    = flag.Bool("overlap", def.Overlap, "overlap gradient collectives with backward compute (grad stream)")
		prefetch   = flag.Bool("prefetch", def.Prefetch, "stage 3: pipeline parameter all-gathers on the prefetch stream")
		depth      = flag.Int("depth", def.PrefetchDepth, "prefetch window in layer groups (1 = one group ahead)")
		nodeSize   = flag.Int("nodesize", def.NodeSize, "ranks per simulated node: route collectives hierarchically (0 = flat)")
		seed       = flag.Int64("seed", def.Seed, "init and data seed")
		dataPath   = flag.String("data", "", "corpus text file: stream real data (overrides the config's data.path)")
		savePath   = flag.String("save", "", "write a consolidated checkpoint here after training")
		loadPath   = flag.String("load", "", "resume from a checkpoint written by -save")
	)
	flag.Parse()

	cfg := def
	if *configPath != "" {
		var err error
		if cfg, err = engine.LoadConfig(*configPath); err != nil {
			log.Fatal(err)
		}
	}
	// Explicitly-set flags override the config file field by field; batch
	// geometry fields that were NOT set are re-derived so a single -batch,
	// -micro or -accum override stays consistent.
	var batchSet, microSet, accumSet bool
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "ranks":
			cfg.Ranks = *ranks
		case "stage":
			cfg.Stage = engine.StageSpec(*stage)
		case "layers":
			cfg.Model.Layers = *layers
		case "hidden":
			cfg.Model.Hidden = *hidden
		case "heads":
			cfg.Model.Heads = *heads
		case "vocab":
			cfg.Model.Vocab = *vocab
		case "seq":
			cfg.Model.Seq = *seq
		case "batch":
			cfg.GlobalBatch, batchSet = *batch, true
		case "micro":
			cfg.MicroBatch, microSet = *microB, true
		case "accum":
			cfg.GradAccumSteps, accumSet = *accum, true
		case "opt":
			cfg.Optimizer.Type = *opt
		case "lr":
			cfg.Optimizer.LR = *lr
		case "clip":
			cfg.GradClip = *clip
		case "fp16":
			cfg.FP16 = *fp16
		case "checkpoint":
			cfg.Checkpoint = *checkpoint
		case "bucket":
			cfg.BucketElems = *bucket
		case "overlap":
			cfg.Overlap = *overlap
		case "prefetch":
			cfg.Prefetch = *prefetch
		case "depth":
			cfg.PrefetchDepth = *depth
		case "nodesize":
			cfg.NodeSize = *nodeSize
		case "seed":
			cfg.Seed = *seed
		case "data":
			if cfg.Data == nil {
				cfg.Data = &engine.DataConfig{}
			}
			// A flag path is relative to the invocation directory, not the
			// config file's BaseDir — anchor it here.
			p, err := filepath.Abs(*dataPath)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Data.Path = p
		}
	})
	if (batchSet || accumSet) && !microSet {
		cfg.MicroBatch = 0 // re-derive from global/accum
	}
	if microSet && !batchSet {
		cfg.GlobalBatch = 0 // re-derive from micro×accum
	}
	if batchSet && microSet && !accumSet {
		cfg.GradAccumSteps = 0 // re-derive from global/micro
	}

	cfg, err := cfg.Normalized()
	if err != nil {
		log.Fatal(err)
	}

	var resume *zero.Snapshot
	if *loadPath != "" {
		blob, err := os.ReadFile(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		if resume, err = zero.DecodeSnapshot(blob); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resuming from %s (opt step %d)\n", *loadPath, resume.OptSteps)
	}

	st, _ := cfg.Stage.Parse()
	psi := cfg.Model.ParamCount()
	fmt.Printf("model: Ψ=%d params | ranks: %d | stage: %v | opt: %s | fp16: %v | ckpt: %v\n",
		psi, cfg.Ranks, st, cfg.Optimizer.Type, cfg.FP16, cfg.Checkpoint)
	fmt.Printf("batch: %d global = %d micro-batch × %d accumulation steps (accumulator: Ψ/N elems at stages ≥ 1)\n",
		cfg.GlobalBatch, cfg.MicroBatch, cfg.GradAccumSteps)
	fmt.Printf("model-state/rank: %.2f MB (baseline DP would be %.2f MB)\n\n",
		zero.ModelStateBytes(int64(psi), st, cfg.Ranks)/1e6,
		zero.ModelStateBytes(int64(psi), zero.StageDP, cfg.Ranks)/1e6)

	seqLen := cfg.Model.Seq
	if cfg.Data != nil {
		seqLen = cfg.Data.SeqLen
		fmt.Printf("data: %s | tokenizer: %s | seq_len: %d | shuffle: %d docs/shard × %d shards\n\n",
			cfg.Data.Path, cfg.Data.Tokenizer, cfg.Data.SeqLen, cfg.Data.ShuffleBuffer, cfg.Ranks)
	}
	start := time.Now()
	var snapBlob []byte
	var corpusTokens int64
	var corpusEpochs, corpusVocab int
	w, err := engine.Run(cfg, func(e *engine.Engine) {
		// Each rank drains its own batcher; the streams are deterministic,
		// so every rank sees the same global micro-batch sequence.
		var batcher engine.Batcher
		if cfg.Data != nil {
			ld, err := engine.OpenData(cfg)
			if err != nil {
				log.Fatal(err)
			}
			defer ld.Close()
			if e.Rank() == 0 {
				defer func() {
					corpusTokens, corpusEpochs, corpusVocab = ld.Tokens(), ld.Epochs(), ld.VocabSize()
				}()
			}
			batcher = ld
		} else {
			batcher = model.NewSyntheticStream(cfg.Seed, cfg.GlobalBatch, cfg.MicroBatch, cfg.Model.Seq, cfg.Model.Vocab)
		}
		if resume != nil {
			if err := e.Load(resume); err != nil {
				log.Fatal(err)
			}
		}
		for s := 0; s < *steps; s++ {
			loss := e.TrainStream(batcher)
			if e.Rank() == 0 && (s == 0 || (s+1)%10 == 0) {
				clipNote := ""
				if cfg.GradClip > 0 {
					clipNote = fmt.Sprintf("  |grad| %.3f", e.LastGradNorm())
				}
				fmt.Printf("  step %3d  loss %.4f%s\n", s+1, loss, clipNote)
			}
		}
		if *savePath != "" {
			if snap := e.Save(); snap != nil {
				var err error
				if snapBlob, err = snap.Encode(); err != nil {
					log.Fatal(err)
				}
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if *savePath != "" {
		if err := os.WriteFile(*savePath, snapBlob, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncheckpoint written to %s (%d bytes)\n", *savePath, len(snapBlob))
	}
	tokens := int64(*steps) * int64(cfg.GlobalBatch) * int64(seqLen)
	st0 := w.Stats(0)
	fmt.Printf("\n%d steps in %v (%.0f tokens/s simulated)\n",
		*steps, elapsed.Round(time.Millisecond), float64(tokens)/elapsed.Seconds())
	if cfg.Data != nil {
		fmt.Printf("corpus: %d tokens streamed over %d epoch(s), tokenizer vocab %d\n",
			corpusTokens, corpusEpochs, corpusVocab)
	}
	fmt.Printf("wire (rank 0): %d elems, %d bytes (native dtype accounting)\n",
		st0.ElemsSent, st0.BytesSent)
	for _, name := range []string{comm.DefaultStream, zero.StreamGrad, zero.StreamPrefetch, zero.StreamCheckpoint, zero.StreamPriority} {
		if elems := st0.PerStream[name]; elems > 0 {
			fmt.Printf("  stream %-10s %d elems\n", name, elems)
		}
	}
	if (zero.Topology{NodeSize: cfg.NodeSize}).Hierarchical(cfg.Ranks) {
		intra, inter := st0.PerGroup["hier-intra"], st0.PerGroup["hier-inter"]
		fmt.Printf("topology (nodes of %d): intra-node %d B, inter-node %d B per rank — %.1fx less crosses the uplink\n",
			cfg.NodeSize, intra.Bytes, inter.Bytes,
			float64(intra.Bytes+inter.Bytes)/float64(inter.Bytes))
	} else if cfg.NodeSize != 0 {
		fmt.Printf("topology: node_size %d covers the whole %d-rank world (or a single rank) — flat routing\n",
			cfg.NodeSize, cfg.Ranks)
	}
}
