// Command zerotrain runs end-to-end training of a GPT-2-like model on a
// simulated multi-GPU cluster under a chosen ZeRO configuration, printing
// loss, throughput of the simulation, per-rank memory accounting and wire
// traffic. It is the "kick the tires" tool for the library.
//
// Examples:
//
//	zerotrain -ranks 4 -stage 2 -steps 50
//	zerotrain -ranks 8 -stage 3 -fp16 -checkpoint -clip 1.0
//	zerotrain -ranks 4 -stage 3 -prefetch         (pipelined parameter all-gathers)
//	zerotrain -ranks 4 -stage 0 -overlap=false    (seed-style synchronous DDP)
//	zerotrain -ranks 4 -stage 2 -save ckpt.bin -steps 20
//	zerotrain -ranks 4 -stage 2 -load ckpt.bin -steps 20
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/zero"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zerotrain: ")
	var (
		ranks      = flag.Int("ranks", 4, "simulated GPU count (DP degree)")
		stage      = flag.String("stage", "2", "ZeRO stage: 0/ddp, 1/os, 2/os+g, 3/full")
		layers     = flag.Int("layers", 4, "transformer layers")
		hidden     = flag.Int("hidden", 64, "hidden width")
		heads      = flag.Int("heads", 4, "attention heads")
		vocab      = flag.Int("vocab", 101, "vocabulary size")
		seq        = flag.Int("seq", 32, "sequence length")
		batch      = flag.Int("batch", 8, "global batch size (must divide by ranks)")
		steps      = flag.Int("steps", 30, "training steps")
		lr         = flag.Float64("lr", 3e-3, "Adam learning rate")
		clip       = flag.Float64("clip", 0, "gradient clipping norm (0 = off)")
		fp16       = flag.Bool("fp16", false, "simulate mixed-precision training")
		checkpoint = flag.Bool("checkpoint", false, "activation checkpointing")
		bucket     = flag.Int("bucket", 4096, "gradient bucket elements (0 = one bucket per layer group)")
		overlap    = flag.Bool("overlap", true, "overlap gradient collectives with backward compute (grad stream)")
		prefetch   = flag.Bool("prefetch", true, "stage 3: pipeline parameter all-gathers on the prefetch stream")
		nodeSize   = flag.Int("nodesize", 0, "ranks per simulated node: route collectives hierarchically (0 = flat)")
		seed       = flag.Int64("seed", 7, "init and data seed")
		savePath   = flag.String("save", "", "write a consolidated checkpoint here after training")
		loadPath   = flag.String("load", "", "resume from a checkpoint written by -save")
	)
	flag.Parse()

	st, err := zero.ParseStage(*stage)
	if err != nil {
		log.Fatal(err)
	}
	cfg := model.Config{Layers: *layers, Hidden: *hidden, Heads: *heads, Vocab: *vocab, Seq: *seq}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	if *batch%*ranks != 0 {
		log.Fatalf("-batch %d must be divisible by -ranks %d", *batch, *ranks)
	}
	opts := zero.Options{
		Stage:       st,
		LR:          *lr,
		Seed:        *seed,
		BucketElems: *bucket,
		Overlap:     *overlap,
		Prefetch:    *prefetch,
		FP16:        *fp16,
		Checkpoint:  *checkpoint,
		ClipNorm:    *clip,
		Topology:    zero.Topology{NodeSize: *nodeSize},
	}

	var resume *zero.Snapshot
	if *loadPath != "" {
		blob, err := os.ReadFile(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		resume, err = zero.DecodeSnapshot(blob)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resuming from %s (opt step %d)\n", *loadPath, resume.OptSteps)
	}

	psi := cfg.ParamCount()
	fmt.Printf("model: Ψ=%d params | ranks: %d | stage: %v | fp16: %v | ckpt: %v\n",
		psi, *ranks, opts.Stage, *fp16, *checkpoint)
	fmt.Printf("model-state/rank: %.2f MB (baseline DP would be %.2f MB)\n\n",
		zero.ModelStateBytes(int64(psi), opts.Stage, *ranks)/1e6,
		zero.ModelStateBytes(int64(psi), zero.StageDP, *ranks)/1e6)

	ids, targets := model.SyntheticBatch(*seed, *batch, cfg.Seq, cfg.Vocab)
	// Validate the topology before spawning ranks so a bad -nodesize is one
	// clean error, not a mid-step panic (the remaining options are covered
	// by the flag checks above).
	if *nodeSize != 0 {
		if err := comm.CheckNodeSize(*ranks, *nodeSize); err != nil {
			log.Fatal(err)
		}
	}
	w := comm.NewWorld(*ranks)
	start := time.Now()
	var snapBlob []byte
	w.Run(func(c *comm.Comm) {
		tr := zero.MustNew(c, cfg, opts)
		defer tr.Close()
		if resume != nil {
			snap := resume
			if c.Size() > 1 {
				snap = zero.BroadcastSnapshot(c, resume)
			}
			if err := tr.Load(snap); err != nil {
				log.Fatal(err)
			}
		}
		for s := 0; s < *steps; s++ {
			loss := tr.Step(ids, targets, *batch)
			if c.Rank() == 0 && (s == 0 || (s+1)%10 == 0) {
				clipNote := ""
				if *clip > 0 {
					clipNote = fmt.Sprintf("  |grad| %.3f", tr.LastGradNorm)
				}
				fmt.Printf("  step %3d  loss %.4f%s\n", s+1, loss, clipNote)
			}
		}
		if *savePath != "" {
			if snap := tr.Save(); snap != nil {
				var err error
				snapBlob, err = snap.Encode()
				if err != nil {
					log.Fatal(err)
				}
			}
		}
	})
	elapsed := time.Since(start)

	if *savePath != "" {
		if err := os.WriteFile(*savePath, snapBlob, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncheckpoint written to %s (%d bytes)\n", *savePath, len(snapBlob))
	}
	tokens := int64(*steps) * int64(*batch) * int64(cfg.Seq)
	st0 := w.Stats(0)
	fmt.Printf("\n%d steps in %v (%.0f tokens/s simulated)\n",
		*steps, elapsed.Round(time.Millisecond), float64(tokens)/elapsed.Seconds())
	fmt.Printf("wire (rank 0): %d elems, %d bytes (native dtype accounting)\n",
		st0.ElemsSent, st0.BytesSent)
	for _, name := range []string{comm.DefaultStream, zero.StreamGrad, zero.StreamPrefetch, zero.StreamCheckpoint} {
		if elems := st0.PerStream[name]; elems > 0 {
			fmt.Printf("  stream %-10s %d elems\n", name, elems)
		}
	}
	if opts.Topology.Hierarchical(*ranks) {
		intra, inter := st0.PerGroup["hier-intra"], st0.PerGroup["hier-inter"]
		fmt.Printf("topology (nodes of %d): intra-node %d B, inter-node %d B per rank — %.1fx less crosses the uplink\n",
			*nodeSize, intra.Bytes, inter.Bytes,
			float64(intra.Bytes+inter.Bytes)/float64(inter.Bytes))
	} else if *nodeSize != 0 {
		fmt.Printf("topology: -nodesize %d covers the whole %d-rank world (or a single rank) — flat routing\n",
			*nodeSize, *ranks)
	}
}
