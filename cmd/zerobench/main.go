// Command zerobench regenerates every table and figure of the ZeRO paper's
// evaluation from this repository's implementation, plus the stage-sweep
// experiments of the unified Stage API.
//
// Usage:
//
//	zerobench [flags] <experiment>...
//	zerobench all
//	zerobench -stage=2              (stage sweep restricted to Pos+g)
//	zerobench -stage=2 -bucket=1024 stagesweep
//
// Experiments: fig1 table1 table2 fig2 fig3 fig4 fig5 fig6 fig7 fig8
// commvolume ablations stagesweep stagethroughput stagememory. Output is an
// aligned text table per experiment; EXPERIMENTS.md records the comparison
// against the paper's reported values.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/comm"
	"repro/internal/experiments"
	"repro/internal/zero"
)

var (
	stageFlag  = flag.String("stage", "", "restrict the stage sweep to one stage (0-3, ddp, os, os+g, full); empty sweeps all")
	bucketFlag = flag.Int("bucket", 4096, "gradient bucket size in elements for the stage sweep")
	ranksFlag  = flag.Int("ranks", 4, "simulated GPU count for the stage sweep")
	stepsFlag  = flag.Int("steps", 3, "measured steps per stage-sweep row")
	nodeFlag   = flag.Int("nodesize", 0, "ranks per simulated node for the stage sweep: route collectives hierarchically and report the intra/inter split (0 = flat)")
)

// sweepConfig routes the flags into the sweep's engine.Config base — the
// same constructor zerotrain and the examples use, so knobs cannot drift
// between the entry points.
func sweepConfig() (experiments.StageSweepConfig, error) {
	sc := experiments.DefaultStageSweep()
	sc.Base.Ranks = *ranksFlag
	sc.Steps = *stepsFlag
	sc.Base.BucketElems = *bucketFlag
	if *nodeFlag != 0 {
		if err := comm.CheckNodeSize(sc.Base.Ranks, *nodeFlag); err != nil {
			return sc, err
		}
		sc.Base.NodeSize = *nodeFlag
	}
	if *stageFlag != "" {
		st, err := zero.ParseStage(*stageFlag)
		if err != nil {
			return sc, err
		}
		sc.Stages = []zero.Stage{st}
	}
	return sc, nil
}

var drivers = map[string]func() experiments.Table{
	"fig1":       experiments.Fig1,
	"table1":     experiments.Table1,
	"table2":     experiments.Table2,
	"fig2":       experiments.Fig2,
	"fig3":       experiments.Fig3,
	"fig4":       experiments.Fig4,
	"fig5":       experiments.Fig5,
	"fig6":       experiments.Fig6,
	"fig7":       experiments.Fig7,
	"fig8":       experiments.Fig8,
	"commvolume": experiments.CommVolume,
	"ablations":  experiments.Ablations,
	"stagesweep": func() experiments.Table {
		sc, _ := sweepConfig() // flags validated in main before dispatch
		return experiments.StageSweep(sc)
	},
	"stagethroughput": experiments.StageThroughput,
	"stagememory":     experiments.StageMemory,
	"accumsweep":      experiments.AccumSweep,
}

// order fixes the "all" sequence to the paper's presentation order, with
// the stage-sweep extensions last.
var order = []string{
	"fig1", "table1", "table2", "fig2", "fig3", "fig4",
	"fig5", "fig6", "fig7", "fig8", "commvolume", "ablations",
	"stagememory", "stagesweep", "stagethroughput", "accumsweep",
}

func main() {
	flag.Usage = usage
	flag.Parse()
	if _, err := sweepConfig(); err != nil {
		fmt.Fprintf(os.Stderr, "zerobench: %v\n", err)
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 0 {
		// A bare `zerobench -stage=N` or `-nodesize=S` means: run the
		// stage sweep.
		if *stageFlag == "" && *nodeFlag == 0 {
			usage()
			os.Exit(2)
		}
		args = []string{"stagesweep"}
	}
	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	for _, name := range args {
		driver, ok := drivers[strings.ToLower(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "zerobench: unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
		t := driver()
		t.Render(os.Stdout)
	}
}

func usage() {
	names := make([]string, 0, len(drivers))
	for n := range drivers {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "usage: zerobench [flags] <experiment>... | all\nexperiments: %s\n",
		strings.Join(names, " "))
	flag.PrintDefaults()
}
