// Command zerobench regenerates every table and figure of the ZeRO paper's
// evaluation from this repository's implementation.
//
// Usage:
//
//	zerobench <experiment>...
//	zerobench all
//
// Experiments: fig1 table1 table2 fig2 fig3 fig4 fig5 fig6 fig7 fig8
// commvolume. Output is an aligned text table per experiment; EXPERIMENTS.md
// records the comparison against the paper's reported values.
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
)

var drivers = map[string]func() experiments.Table{
	"fig1":       experiments.Fig1,
	"table1":     experiments.Table1,
	"table2":     experiments.Table2,
	"fig2":       experiments.Fig2,
	"fig3":       experiments.Fig3,
	"fig4":       experiments.Fig4,
	"fig5":       experiments.Fig5,
	"fig6":       experiments.Fig6,
	"fig7":       experiments.Fig7,
	"fig8":       experiments.Fig8,
	"commvolume": experiments.CommVolume,
	"ablations":  experiments.Ablations,
}

// order fixes the "all" sequence to the paper's presentation order.
var order = []string{
	"fig1", "table1", "table2", "fig2", "fig3", "fig4",
	"fig5", "fig6", "fig7", "fig8", "commvolume", "ablations",
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	for _, name := range args {
		driver, ok := drivers[strings.ToLower(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "zerobench: unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
		t := driver()
		t.Render(os.Stdout)
	}
}

func usage() {
	names := make([]string, 0, len(drivers))
	for n := range drivers {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "usage: zerobench <experiment>... | all\nexperiments: %s\n",
		strings.Join(names, " "))
}
