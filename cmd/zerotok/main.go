// Command zerotok trains a byte-level BPE vocabulary from a text corpus
// and writes it as a vocab JSON file, so large vocabularies are trained
// once offline and committed instead of re-trained at every data Open.
//
//	zerotok -corpus corpus.txt -o vocab.json -vocab-size 512
//
// The trainer streams the corpus through the same document framing the
// training loader uses (blank-line separators, -max-doc-bytes splits),
// so the committed vocabulary sees exactly the documents training will.
// Point a config's data block at the output:
//
//	"data": {"path": "corpus.txt", "tokenizer": "vocab.json", ...}
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/data"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zerotok: ")
	var (
		corpusPath  = flag.String("corpus", "", "input text corpus (blank-line separated documents)")
		outPath     = flag.String("o", "vocab.json", "output vocabulary JSON path")
		vocabSize   = flag.Int("vocab-size", 512, "target vocabulary size incl. the 257 byte+EOT base ids")
		trainBytes  = flag.Int("train-bytes", data.DefaultZerotokTrainBytes, "sample budget: corpus bytes fed to the merge trainer")
		maxDocBytes = flag.Int("max-doc-bytes", data.DefaultMaxDocBytes, "split documents longer than this many bytes")
	)
	flag.Parse()
	if *corpusPath == "" {
		fmt.Fprintln(os.Stderr, "usage: zerotok -corpus <file> [-o vocab.json] [-vocab-size N] [-train-bytes N] [-max-doc-bytes N]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	t, stats, err := data.TrainFromCorpus(*corpusPath, *vocabSize, *trainBytes, *maxDocBytes)
	if err != nil {
		log.Fatal(err)
	}
	if err := data.SaveTokenizerFile(t, *outPath); err != nil {
		log.Fatal(err)
	}
	ratio := float64(stats.SampleBytes) / float64(stats.SampleTokens)
	log.Printf("trained %d-id vocab from %d docs (%d sample bytes, %.2f bytes/token) -> %s",
		t.VocabSize(), stats.Docs, stats.SampleBytes, ratio, *outPath)
}
