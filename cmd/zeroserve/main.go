// Command zeroserve is the training-as-a-service daemon: an HTTP/JSON
// control plane that accepts engine.Config job submissions, trains each in
// its own isolated simulated world under a bounded multi-job scheduler,
// streams live per-step metrics, and serves consolidated checkpoints.
//
//	zeroserve                               # defaults: :8400, 2 worlds
//	zeroserve -addr :9000 -max-worlds 4
//	zeroserve -config server.json           # serve.Config; flags override
//	zeroserve -token s3cret                 # bearer-token auth
//
// Endpoints (see README "Serving"):
//
// Jobs may opt into elastic fault tolerance: "snapshot_every" takes async
// boundary snapshots, "max_restarts" lets the supervisor restart a job that
// lost a rank from its last snapshot, "restart_ranks" reshards the state to
// a smaller world for the retry, and "fault" injects a deterministic rank
// kill for drills (see README "Elastic checkpointing & recovery").
//
//	POST   /v1/jobs                   submit {"steps": N, "config": {...}}
//	GET    /v1/jobs                   list jobs
//	GET    /v1/jobs/{id}              job status
//	GET    /v1/jobs/{id}/metrics      per-step NDJSON (SSE via Accept)
//	DELETE /v1/jobs/{id}              cancel
//	GET    /v1/jobs/{id}/checkpoint   final snapshot (gob)
//	GET    /healthz                   liveness, no auth
//
// SIGINT/SIGTERM drains gracefully: the listener stops, queued jobs are
// cancelled, and running jobs checkpoint-and-stop at their next
// accumulation boundary before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("zeroserve: ")
	def := serve.DefaultConfig()
	var (
		configPath = flag.String("config", "", "JSON server config (serve.Config); flags override its fields")
		addr       = flag.String("addr", def.Addr, "HTTP listen address")
		token      = flag.String("token", "", "bearer token required on every endpoint except /healthz (empty = open)")
		maxWorlds  = flag.Int("max-worlds", def.MaxWorlds, "jobs training concurrently, each in its own world")
		queueDepth = flag.Int("queue-depth", def.QueueDepth, "admitted jobs waiting behind the running ones")
		ringSize   = flag.Int("ring", def.MetricRing, "per-job metric ring capacity in step records")
		maxSteps   = flag.Int("max-steps", def.MaxSteps, "per-job optimizer step cap")
		snapDir    = flag.String("snapshot-dir", "", "directory for per-job elastic snapshots (empty = in-memory only)")
		snapKeep   = flag.Int("snapshot-keep", def.SnapshotKeep, "checkpoint files retained per job in -snapshot-dir")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for running jobs to checkpoint-and-stop")
	)
	flag.Parse()

	cfg := def
	if *configPath != "" {
		blob, err := os.ReadFile(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		if cfg, err = serve.ParseConfig(blob); err != nil {
			log.Fatal(err)
		}
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "addr":
			cfg.Addr = *addr
		case "token":
			cfg.Token = *token
		case "max-worlds":
			cfg.MaxWorlds = *maxWorlds
		case "queue-depth":
			cfg.QueueDepth = *queueDepth
		case "ring":
			cfg.MetricRing = *ringSize
		case "max-steps":
			cfg.MaxSteps = *maxSteps
		case "snapshot-dir":
			cfg.SnapshotDir = *snapDir
		case "snapshot-keep":
			cfg.SnapshotKeep = *snapKeep
		}
	})

	srv, err := serve.New(cfg, log.Default())
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Addr: srv.Config().Addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (max %d concurrent worlds, queue %d)",
			srv.Config().Addr, srv.Config().MaxWorlds, srv.Config().QueueDepth)
		errc <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("%v: draining (running jobs checkpoint-and-stop at their next boundary)", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Drain(ctx); err != nil {
		log.Fatalf("drain: %v (jobs may not have checkpointed)", err)
	}
	log.Print("drained cleanly")
}
