# Standard pre-PR gate: `make check` must pass before every commit.

GO ?= go

.PHONY: check fmt vet build test race bench sweep all

check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector gate for the concurrent packages: the collectives, the
# async bucket engine, the trainer overlap path, and the parallel kernels.
race:
	$(GO) test -race ./internal/comm ./internal/zero ./internal/tensor ./internal/ddp

# Regenerate the stage-API benchmark baseline (BENCH_STAGE_API.json).
bench:
	./scripts/bench.sh

# Render the stage-sweep experiments.
sweep:
	$(GO) run ./cmd/zerobench stagememory stagesweep stagethroughput

all: check
