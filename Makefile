# Standard pre-PR gate: `make check` must pass before every commit.

GO ?= go

.PHONY: check fmt vet build build-arm64 test race configcheck fuzz-smoke serve-smoke elastic-smoke bench bench-prefetch bench-hier bench-accum bench-kernels bench-data bench-serve bench-elastic bench-fp16 bench-compare bench-smoke pprof sweep all

check: fmt vet build build-arm64 test race configcheck fuzz-smoke serve-smoke elastic-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Cross-compile gate for the non-amd64 fallbacks: the fp16 encode/decode
# and kernel paths carry portable implementations behind build tags, and
# this keeps them compiling.
build-arm64:
	GOARCH=arm64 $(GO) build ./...

test:
	$(GO) test ./...

# Race-detector gate for the concurrent packages: the collectives, the
# stream scheduler, the trainer overlap/prefetch/accumulation paths, the
# engine lifecycle, the async snapshotter + fault-injection paths, and the
# parallel kernels.
race:
	$(GO) test -race ./internal/comm ./internal/zero ./internal/engine ./internal/tensor ./internal/ddp ./internal/serve ./internal/elastic

# Config-roundtrip gate: every committed example config must parse strictly
# and pass engine.Config.Validate.
configcheck:
	$(GO) test ./internal/engine -run TestCommittedConfigsValidate

# Short native-fuzzer smokes: the BPE encode/decode round-trip and the
# fp32↔fp16 conversion surface (batch encoders vs the scalar reference) —
# a few seconds of coverage-guided input generation on every `make check`.
fuzz-smoke:
	$(GO) test ./internal/data -run=NONE -fuzz=FuzzBPERoundTrip -fuzztime=3s
	$(GO) test ./internal/tensor -run=NONE -fuzz=FuzzHalfRoundTrip -fuzztime=3s

# Control-plane smoke: the full submit → stream → checkpoint HTTP round
# trip against an in-process zeroserve (part of `make check`).
serve-smoke:
	$(GO) test ./internal/serve -run TestServeSubmitStreamCheckpoint -count=1

# Elastic-recovery smoke: a deterministic mid-run rank kill recovered by
# the supervisor from its last boundary snapshot, under the race detector
# (part of `make check`).
elastic-smoke:
	$(GO) test -race ./internal/serve -run TestElasticKillResume -count=1

# Regenerate the stage-API benchmark baseline (BENCH_STAGE_API.json).
bench:
	./scripts/bench.sh

# Regenerate the stage-3 prefetch baseline (BENCH_PREFETCH.json).
bench-prefetch:
	./scripts/bench_prefetch.sh

# Regenerate the hierarchical-topology baseline (BENCH_HIER.json).
bench-hier:
	./scripts/bench_hier.sh

# Regenerate the gradient-accumulation baseline (BENCH_ACCUM.json).
bench-accum:
	./scripts/bench_accum.sh

# Regenerate the dense-kernel baseline (BENCH_KERNELS.json).
bench-kernels:
	./scripts/bench_kernels.sh

# Regenerate the data-pipeline baseline (BENCH_DATA.json).
bench-data:
	./scripts/bench_data.sh

# Regenerate the control-plane baseline (BENCH_SERVE.json).
bench-serve:
	./scripts/bench_serve.sh

# Regenerate the elastic-checkpointing baseline (BENCH_ELASTIC.json).
bench-elastic:
	./scripts/bench_elastic.sh

# Regenerate the fp16 compute-path baseline (BENCH_FP16.json).
bench-fp16:
	./scripts/bench_fp16.sh

# Re-run every baseline suite and fail on >10% ns/op regression — or any
# allocs/op growth (hard gate; allocation counts are deterministic) —
# against the committed JSONs.
bench-compare:
	./scripts/bench_compare.sh BENCH_STAGE_API.json
	./scripts/bench_compare.sh BENCH_PREFETCH.json
	./scripts/bench_compare.sh BENCH_HIER.json
	./scripts/bench_compare.sh BENCH_ACCUM.json
	./scripts/bench_compare.sh BENCH_KERNELS.json
	./scripts/bench_compare.sh BENCH_DATA.json
	./scripts/bench_compare.sh BENCH_SERVE.json
	./scripts/bench_compare.sh BENCH_ELASTIC.json
	./scripts/bench_compare.sh BENCH_FP16.json

# One-iteration benchmark smoke: proves the alloc-reporting path itself
# still runs (CI uses this; it makes no timing claims).
bench-smoke:
	$(GO) test -run=NONE -bench='StageStep|AccumStep|^BenchmarkKernels$$|^BenchmarkDataPipeline$$|^BenchmarkServe$$|^BenchmarkElastic$$|^BenchmarkFP16Step$$' -benchtime=1x .

# Capture CPU + heap profiles of BenchmarkStageStep into ./profiles (see
# README "Profiling & allocation discipline" for how to read them).
pprof:
	./scripts/profile.sh

# Render the stage-sweep experiments.
sweep:
	$(GO) run ./cmd/zerobench stagememory stagesweep stagethroughput accumsweep

all: check
